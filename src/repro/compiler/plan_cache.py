"""Cross-run plan and breakpoint-snapshot reuse (the ``PlanCache``).

A sweep is N near-identical experiments: every point used to re-split the
same program, re-classify the same Clifford prefix, and re-walk the same
noiseless prefix before noise or readout ever differentiated the points.
This module removes that redundancy at two levels:

* **Plan reuse.**  :func:`program_fingerprint` derives a stable
  content-address for a program — canonical over gate *spellings* (``s`` and
  ``rz(pi/2)`` fingerprint identically via the phase-canonical matrix keying
  of :mod:`repro.sim.clifford`) — and :class:`PlanCache` maps fingerprints to
  compiled :class:`~repro.compiler.splitter.ExecutionPlan` objects, Clifford
  classification included.  Repeated ``session.check`` calls and sweep points
  compile each unique program exactly once.
* **Prefix-snapshot reuse.**  For runs whose plan walk is noiseless and
  rng-free (no gate-noise channels, no mid-circuit resets of superposed
  qubits), the breakpoint states depend only on (program, backend family).
  The first walk records one snapshot token per breakpoint
  (:class:`SnapshotSet`); later runs restore each token and draw their
  ensembles directly, skipping the gate work entirely.  Because the recorded
  walk consumes no rng draws, a snapshot-served run is verdict- and
  stream-identical to a cold one — reuse is a pure work optimisation, never a
  statistics change.

The process-global :func:`default_plan_cache` is wired into
:meth:`repro.compiler.executor.BreakpointExecutor.from_config`; hit/miss
counters make the reuse observable from ``ExecutionPlan.describe()`` and
``repro.workloads.assertion_cost``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..lang.instructions import (
    AssertionInstruction,
    AssertObservableInstruction,
    BarrierInstruction,
    BlockMarkerInstruction,
    ClassicalAssertInstruction,
    EntangledAssertInstruction,
    GateInstruction,
    MeasureInstruction,
    PrepInstruction,
    ProductAssertInstruction,
    SuperpositionAssertInstruction,
)
from ..lang.program import Program
from ..sim.backend import SimulationBackend
from ..sim.clifford import _canonical_key as _phase_canonical_key
from .splitter import ExecutionPlan, build_execution_plan

__all__ = [
    "program_fingerprint",
    "SnapshotSet",
    "PlanCache",
    "default_plan_cache",
]


# -- program fingerprinting -------------------------------------------------

#: Memoised canonical gate keys, by (name, params, num_controls).  Uncontrolled
#: gates key phase-canonically (global phase never changes measurement
#: statistics); controlled gates key on the exact base matrix, because the
#: base gate's global phase becomes a relative phase on the control — the same
#: distinction :mod:`repro.sim.clifford` draws for tableau recognition.
_GATE_KEYS: "dict[tuple, bytes]" = {}


def _gate_key(instruction: GateInstruction) -> bytes:
    cache_key = (instruction.name, instruction.params, bool(instruction.controls))
    key = _GATE_KEYS.get(cache_key)
    if key is None:
        matrix = instruction.base_matrix()
        if instruction.controls:
            key = (np.round(np.asarray(matrix, dtype=complex), 6) + 0.0).tobytes()
        else:
            key = _phase_canonical_key(matrix) or matrix.tobytes()
        _GATE_KEYS[cache_key] = key
    return key


#: Exact canonical key of the X matrix, used to canonicalise ``PrepZ(q, 1)``
#: as ``PrepZ(q, 0); X q`` — the lowering OpenQASM export performs — so a
#: program and its QASM round-trip fingerprint identically.
_ASSERTION_TAGS = {
    ClassicalAssertInstruction: "classical",
    SuperpositionAssertInstruction: "superposition",
    EntangledAssertInstruction: "entangled",
    ProductAssertInstruction: "product",
    AssertObservableInstruction: "observable",
}


def _update_gate(hasher, key: bytes, controls, targets) -> None:
    hasher.update(b"g")
    hasher.update(key)
    hasher.update(("c" + ",".join(map(str, controls))).encode())
    hasher.update(("t" + ",".join(map(str, targets))).encode())


def program_fingerprint(program: Program) -> str:
    """Stable content-address of a program's checking semantics.

    Two programs share a fingerprint exactly when they compile to equivalent
    execution plans: same register layout, same gate stream up to spelling
    (phase-canonical base matrices, exact matrices under controls), same
    preparations (``PrepZ(q, 1)`` canonicalised to ``PrepZ(q, 0); X q``),
    and same assertions (type, operands, expected values, labels).
    Barriers, block markers and terminal measurements never affect the plan
    walk and are excluded, which is what makes the fingerprint stable across
    an OpenQASM round trip.
    """
    hasher = hashlib.sha256()
    for register in program.registers:
        hasher.update(f"r:{register.name}:{register.size};".encode())
    # Lint suppressions change the diagnostics embedded in cached analysis
    # results, so suppressing programs address distinct cache entries; the
    # common (no-suppression) case keeps its historical fingerprint.
    suppressions = getattr(program, "lint_suppressions", None)
    if suppressions:
        hasher.update(f"q:{sorted(suppressions)};".encode())
    x_key = None
    for instruction in program.instructions:
        if isinstance(instruction, GateInstruction):
            _update_gate(
                hasher,
                _gate_key(instruction),
                [program.qubit_index(q) for q in instruction.controls],
                [program.qubit_index(q) for q in instruction.targets],
            )
        elif isinstance(instruction, PrepInstruction):
            index = program.qubit_index(instruction.qubit)
            hasher.update(f"p:{index};".encode())
            if instruction.value == 1:
                if x_key is None:
                    x_key = _gate_key(GateInstruction(name="x", targets=(instruction.qubit,)))
                _update_gate(hasher, x_key, [], [index])
        elif isinstance(instruction, AssertionInstruction):
            tag = _ASSERTION_TAGS[type(instruction)]
            hasher.update(f"a:{tag}:{instruction.label};".encode())
            if isinstance(instruction, ClassicalAssertInstruction):
                indices = [program.qubit_index(q) for q in instruction.measured]
                hasher.update(f"{indices}={instruction.value};".encode())
            elif isinstance(instruction, AssertObservableInstruction):
                indices = [program.qubit_index(q) for q in instruction.targets]
                terms = [
                    (term.label(), repr(term.coefficient.real))
                    for term in instruction.observable.terms
                ]
                hasher.update(
                    f"{indices}:{terms}=={instruction.expectation!r}"
                    f"~{instruction.tolerance!r};".encode()
                )
            elif isinstance(instruction, SuperpositionAssertInstruction):
                indices = [program.qubit_index(q) for q in instruction.measured]
                values = sorted(instruction.values) if instruction.values else None
                hasher.update(f"{indices}~{values};".encode())
            else:
                group_a = [program.qubit_index(q) for q in instruction.group_a]
                group_b = [program.qubit_index(q) for q in instruction.group_b]
                hasher.update(f"{group_a}|{group_b};".encode())
        elif isinstance(
            instruction,
            (BarrierInstruction, BlockMarkerInstruction, MeasureInstruction),
        ):
            continue
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected instruction type {type(instruction)!r}")
    return hasher.hexdigest()


def walk_is_deterministic(plan: ExecutionPlan) -> bool:
    """True when walking the plan can never consume an rng draw.

    ``PrepZ`` is exact on basis-state qubits and falls back to a
    measurement-based reset (one rng draw) only on superposed qubits.  A
    qubit can be superposed only after a gate touched it, so the walk is
    rng-free when no preparation follows a gate on the same qubit — the
    conservative static condition under which breakpoint snapshots may be
    shared across runs without perturbing any rng stream.
    """
    touched: set = set()
    for segment in plan.segments:
        for instruction in segment.instructions:
            if isinstance(instruction, GateInstruction):
                touched.update(instruction.qubits())
            elif isinstance(instruction, PrepInstruction):
                if instruction.qubit in touched:
                    return False
    return True


# -- snapshot sets ----------------------------------------------------------


@dataclass
class SnapshotSet:
    """One recorded noiseless plan walk on one backend family.

    Holds the (cache-owned) backend instance left at the end of the walk,
    one snapshot token and operand-index list per plan segment, and the gate
    work the walk cost — which is exactly the work every snapshot-served run
    saves.
    """

    backend_name: str
    engine: SimulationBackend
    tokens: list = field(default_factory=list)
    indices: list = field(default_factory=list)
    #: Gate applications the recorded walk performed (total / dense subset).
    walk_gates: int = 0
    walk_statevector_gates: int = 0
    #: Times this set served a run without re-walking.
    hits: int = 0


@dataclass
class _CacheEntry:
    fingerprint: str
    plan: ExecutionPlan
    #: True when the plan walk is rng-free (snapshot sharing is sound).
    deterministic_walk: bool
    #: Recorded walks keyed by resolved backend name.
    snapshots: "dict[str, SnapshotSet]" = field(default_factory=dict)
    #: Cached static-analysis results (verdicts + diagnostics) keyed by the
    #: effective support-enumeration cap; computed on first request per cap,
    #: valid for every noise-free config of the program.
    analysis: "dict[int, object]" = field(default_factory=dict)


class PlanCache:
    """Content-addressed cache of execution plans and breakpoint snapshots.

    ``plan_for(program)`` returns the compiled plan for the program's
    fingerprint, building (and Clifford-classifying) it at most once per
    unique program; ``snapshots_for(plan, backend_name)`` returns the
    recorded :class:`SnapshotSet` for a backend family, or ``None`` when the
    executor must walk (and record).  Eviction is LRU over plans with a
    small default capacity — entries own backend instances, so the cache is
    bounded by construction.

    The cache is safe to share across sequential runs in one process, and
    ``plan_for`` is safe to hammer from many threads: a per-fingerprint
    in-flight marker coalesces concurrent compiles, so each unique program
    is built exactly once no matter how many threads ask for it at the same
    instant (the builders that arrive late wait and count as hits).
    Concurrent *sampling* from one cached engine is still not supported —
    process-sharded sweeps give every worker its own cache.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        #: Per-fingerprint events marking builds in progress; threads that
        #: lose the build race wait on the event instead of compiling again.
        self._inflight: "dict[str, threading.Event]" = {}
        self.hits = 0
        self.misses = 0
        self.snapshot_hits = 0
        self.snapshot_misses = 0
        #: Cumulative gate applications skipped by snapshot-served runs.
        self.gates_saved = 0
        self.analysis_hits = 0
        self.analysis_misses = 0
        #: Breakpoints whose sampling the checker skipped on a static verdict.
        self.static_short_circuits = 0
        #: Cumulative gate applications those short-circuits avoided.
        self.static_gates_saved = 0

    # -- plans ----------------------------------------------------------

    def plan_for(self, program: Program) -> ExecutionPlan:
        """The compiled plan for ``program``, compiled at most once.

        Concurrent calls for the same fingerprint coalesce: the first
        caller builds while the rest wait on an in-flight marker and are
        then served the cached plan (counted as hits).  ``misses`` therefore
        counts *builds*, so after any amount of concurrent hammering
        ``misses == unique programs compiled`` and ``hits + misses == calls``.
        """
        fingerprint = program_fingerprint(program)
        while True:
            with self._lock:
                entry = self._entries.get(fingerprint)
                if entry is not None:
                    self._entries.move_to_end(fingerprint)
                    self.hits += 1
                    entry.plan.cache_hits += 1
                    return entry.plan
                pending = self._inflight.get(fingerprint)
                if pending is None:
                    pending = threading.Event()
                    self._inflight[fingerprint] = pending
                    building = True
                else:
                    building = False
            if not building:
                # Another thread is compiling this fingerprint right now;
                # wait for it, then loop back to the hit path.  (If the
                # builder failed — or its entry was evicted under extreme
                # pressure — the loop simply elects a fresh builder.)
                pending.wait()
                continue
            try:
                plan = build_execution_plan(program)
                plan.fingerprint = fingerprint
                with self._lock:
                    self.misses += 1
                    self._entries[fingerprint] = _CacheEntry(
                        fingerprint=fingerprint,
                        plan=plan,
                        deterministic_walk=walk_is_deterministic(plan),
                    )
                    while len(self._entries) > self.max_entries:
                        self._entries.popitem(last=False)
                return plan
            finally:
                with self._lock:
                    self._inflight.pop(fingerprint, None)
                pending.set()

    def shareable(self, plan: ExecutionPlan) -> bool:
        """True when breakpoint snapshots of ``plan`` may serve other runs."""
        if plan.fingerprint is None:
            return False
        with self._lock:
            entry = self._entries.get(plan.fingerprint)
        return entry is not None and entry.deterministic_walk

    # -- snapshots ------------------------------------------------------

    def snapshots_for(
        self, plan: ExecutionPlan, backend_name: str
    ) -> SnapshotSet | None:
        """The recorded walk for (plan, backend family), if one exists."""
        if plan.fingerprint is None:
            return None
        with self._lock:
            entry = self._entries.get(plan.fingerprint)
            if entry is None or not entry.deterministic_walk:
                return None
            snapshot_set = entry.snapshots.get(backend_name)
            if snapshot_set is None:
                self.snapshot_misses += 1
                return None
            self.snapshot_hits += 1
            snapshot_set.hits += 1
            self.gates_saved += snapshot_set.walk_gates
            plan.shared_prefix_gates_saved += snapshot_set.walk_gates
        return snapshot_set

    def record_snapshots(
        self, plan: ExecutionPlan, snapshot_set: SnapshotSet
    ) -> None:
        """Store a freshly recorded walk for later runs to restore from."""
        if plan.fingerprint is None:
            return
        with self._lock:
            entry = self._entries.get(plan.fingerprint)
            if entry is not None and entry.deterministic_walk:
                entry.snapshots[snapshot_set.backend_name] = snapshot_set

    # -- static analysis -------------------------------------------------

    def analysis_for(self, plan: ExecutionPlan, max_support: "int | None" = None):
        """The static :class:`~repro.analysis.AnalysisResult` for ``plan``.

        Computed once per (fingerprint, support cap) and cached on the plan's
        entry — verdicts depend only on the program and the enumeration cap,
        never on ensemble size, seed or significance, so one analysis serves
        every noise-free sweep point at that cap.  Plans without a
        fingerprint are analyzed fresh each call.
        """
        # Runtime import: analysis sits above the compiler layer (it walks
        # plans), so the compiler must not import it at module scope.
        from ..analysis import SUPPORT_LIMIT, analyze_plan

        cap = SUPPORT_LIMIT if max_support is None else int(max_support)
        fingerprint = plan.fingerprint
        if fingerprint is not None:
            with self._lock:
                entry = self._entries.get(fingerprint)
                if entry is not None and cap in entry.analysis:
                    self.analysis_hits += 1
                    return entry.analysis[cap]
        result = analyze_plan(plan, max_support=cap)
        with self._lock:
            self.analysis_misses += 1
            if fingerprint is not None:
                entry = self._entries.get(fingerprint)
                if entry is not None:
                    entry.analysis[cap] = result
        return result

    def record_static_short_circuit(
        self, breakpoints: int, gates_saved: int
    ) -> None:
        """Account for breakpoints the checker skipped on static verdicts."""
        with self._lock:
            self.static_short_circuits += breakpoints
            self.static_gates_saved += gates_saved

    # -- bookkeeping ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every cached plan and snapshot and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.snapshot_hits = 0
            self.snapshot_misses = 0
            self.gates_saved = 0
            self.analysis_hits = 0
            self.analysis_misses = 0
            self.static_short_circuits = 0
            self.static_gates_saved = 0

    def stats(self) -> dict:
        """Counter snapshot: plans cached, hit/miss rates, gates saved."""
        with self._lock:
            return {
                "plans": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "snapshot_hits": self.snapshot_hits,
                "snapshot_misses": self.snapshot_misses,
                "gates_saved": self.gates_saved,
                "analysis_hits": self.analysis_hits,
                "analysis_misses": self.analysis_misses,
                "static_short_circuits": self.static_short_circuits,
                "static_gates_saved": self.static_gates_saved,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PlanCache({self.stats()!r})"


#: The process-global cache every executor constructed without an explicit
#: cache uses.  Workers of a process-sharded sweep each get their own.
_DEFAULT_CACHE: PlanCache | None = None


def default_plan_cache() -> PlanCache:
    """The process-global :class:`PlanCache` (created on first use)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = PlanCache()
    return _DEFAULT_CACHE
