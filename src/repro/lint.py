"""``python -m repro.lint``: lint (and optionally statically check) programs.

A thin command-line front end over :mod:`repro.analysis`: each argument is an
OpenQASM 2.0 file (the subset :func:`repro.lang.qasm.from_qasm` understands,
including the ``// assert_*`` structured comments the exporter emits), and
each file is run through the program linter.  With ``--analyze`` the
stabilizer-domain abstract interpreter also reports a PROVEN / REFUTED /
UNDECIDED verdict per assertion.

Exit status is 1 when any file produced an error-severity diagnostic (or
could not be parsed), 0 otherwise — warnings alone do not fail the run, so
the tool can sit in a CI pipeline next to the test suite.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .analysis import analyze_program, lint_program
from .lang.qasm import QasmError, from_qasm

__all__ = ["main"]


def _lint_file(path: Path, analyze: bool, suppress: bool = True) -> dict:
    """Lint one file; returns a JSON-ready result row."""
    try:
        text = path.read_text()
    except OSError as exc:
        return {"file": str(path), "error": f"cannot read: {exc}"}
    try:
        program = from_qasm(text, name=path.stem)
    except QasmError as exc:
        return {"file": str(path), "error": f"parse error: {exc}"}

    row: dict = {"file": str(path)}
    if analyze:
        result = analyze_program(program)
        diagnostics = result.diagnostics
        row["verdicts"] = [verdict.to_dict() for verdict in result.verdicts]
        if not suppress:
            diagnostics = lint_program(program, suppress=False)
    else:
        diagnostics = lint_program(program, suppress=suppress)
    if program.lint_suppressions:
        row["suppressed_codes"] = sorted(program.lint_suppressions)
    row["diagnostics"] = [diagnostic.to_dict() for diagnostic in diagnostics]
    row["errors"] = sum(diagnostic.is_error for diagnostic in diagnostics)
    return row


def _print_row(row: dict) -> None:
    from .analysis.diagnostics import Diagnostic

    if "error" in row:
        print(f"{row['file']}: error: {row['error']}")
        return
    for payload in row["diagnostics"]:
        print(Diagnostic.from_dict(payload).format(row["file"]))
    for verdict in row.get("verdicts", ()):
        print(
            f"{row['file']}: breakpoint {verdict['index']} "
            f"{verdict['assertion_type']}: {verdict['verdict'].upper()} "
            f"({verdict['reason']})"
        )
    if not row["diagnostics"] and "verdicts" not in row:
        print(f"{row['file']}: clean")


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Lint OpenQASM 2.0 files for quantum-program dataflow "
        "smells (QLINT001-009); optionally prove/refute their assertions "
        "statically.",
    )
    parser.add_argument("files", nargs="+", metavar="FILE.qasm")
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="also run the stabilizer abstract interpreter and report a "
        "verdict per assertion",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object per file instead of human-readable lines",
    )
    parser.add_argument(
        "--no-suppress",
        action="store_true",
        help="report diagnostics even when the file opts out of them via "
        "'// qlint: disable=QLINT0xx' comments",
    )
    args = parser.parse_args(argv)

    failed = False
    for name in args.files:
        row = _lint_file(
            Path(name), analyze=args.analyze, suppress=not args.no_suppress
        )
        if args.json:
            print(json.dumps(row, sort_keys=True))
        else:
            _print_row(row)
        if "error" in row or row.get("errors"):
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
