"""Plan-cache tests: fingerprint stability, compile-once sweeps, snapshot reuse.

The PlanCache promises three things: a program's fingerprint is stable
across equivalent gate *spellings* (and an OpenQASM round trip), each unique
program compiles at most once per sweep, and a snapshot-served checking run
is verdict- and stream-identical to a cold-cache run on every backend
family.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import Program, RunConfig, check_program
from repro.compiler import (
    BreakpointExecutor,
    PlanCache,
    build_execution_plan,
    default_plan_cache,
    program_fingerprint,
)
from repro.lang.instructions import GateInstruction
from repro.lang.qasm import from_qasm, to_qasm

SEED = 20190622

BACKENDS = ("statevector", "density", "stabilizer", "auto", "trajectory")


def bell_program(name: str = "bell") -> Program:
    program = Program(name)
    q = program.qreg("q", 2)
    program.h(q[0])
    program.cnot(q[0], q[1])
    program.assert_entangled([q[0]], [q[1]], label="bell pair")
    return program


def spelled_program(spelling: str) -> Program:
    """The same circuit under different but equivalent gate spellings."""
    program = Program(f"spelled_{spelling}")
    q = program.qreg("q", 2)
    program.h(q[0])
    if spelling == "s":
        program.s(q[0])
        program.sdg(q[1])
    else:
        # rz differs from s/sdg only by a global phase.
        program.rz(q[0], np.pi / 2)
        program.rz(q[1], -np.pi / 2)
    program.cnot(q[0], q[1])
    program.assert_entangled([q[0]], [q[1]], label="pair")
    return program


class TestFingerprint:
    def test_identical_programs_share_a_fingerprint(self):
        assert program_fingerprint(bell_program()) == program_fingerprint(
            bell_program("other_name")
        )

    def test_stable_across_equivalent_gate_spellings(self):
        # s == rz(pi/2) and sdg == rz(-pi/2) up to global phase, which can
        # never change measurement statistics on an uncontrolled gate.
        assert program_fingerprint(spelled_program("s")) == program_fingerprint(
            spelled_program("rz")
        )

    def test_phase_and_rz_spellings_match(self):
        def build(use_phase: bool) -> Program:
            program = Program("p")
            q = program.qreg("q", 1)
            program.h(q[0])
            if use_phase:
                program.phase(q[0], np.pi / 4)
            else:
                program.rz(q[0], np.pi / 4)
            program.assert_superposition([q[0]], label="sup")
            return program

        assert program_fingerprint(build(True)) == program_fingerprint(build(False))

    def test_controlled_spellings_keep_global_phase(self):
        # Under a control the base gate's global phase becomes a *relative*
        # phase: controlled-s and controlled-rz(pi/2) are different unitaries
        # and must not collide.
        def build(name: str, params: tuple) -> Program:
            program = Program("c")
            q = program.qreg("q", 2)
            program.h(q[0])
            program.append(
                GateInstruction(
                    name=name, targets=(q[1],), controls=(q[0],), params=params
                )
            )
            program.assert_entangled([q[0]], [q[1]], label="pair")
            return program

        assert program_fingerprint(build("s", ())) != program_fingerprint(
            build("rz", (np.pi / 2,))
        )

    def test_different_circuits_differ(self):
        other = bell_program()
        other.x(other.registers[0][1])
        assert program_fingerprint(bell_program()) != program_fingerprint(other)

    def test_assertion_operands_and_labels_matter(self):
        relabelled = Program("bell")
        q = relabelled.qreg("q", 2)
        relabelled.h(q[0])
        relabelled.cnot(q[0], q[1])
        relabelled.assert_entangled([q[0]], [q[1]], label="other label")
        assert program_fingerprint(bell_program()) != program_fingerprint(relabelled)

    def test_qasm_round_trip_is_fingerprint_stable(self):
        # Export lowers PrepZ(q, 1) to `reset; x` and spells phases as u1;
        # the fingerprint canonicalises both, so a round-tripped program
        # (assertions are dropped by OpenQASM 2.0, so compare without them)
        # keys identically.
        program = Program("roundtrip")
        q = program.qreg("q", 2)
        program.prep_z(q[0], 1)
        program.h(q[1])
        program.phase(q[1], np.pi / 8)
        program.cnot(q[0], q[1])
        reimported = from_qasm(to_qasm(program))
        assert program_fingerprint(program) == program_fingerprint(reimported)

    def test_terminal_measure_and_barriers_do_not_affect_it(self):
        bare = bell_program()
        dressed = bell_program()
        q = dressed.registers[0]
        dressed.barrier()
        dressed.measure([q[0], q[1]])
        assert program_fingerprint(bare) == program_fingerprint(dressed)


class TestPlanCache:
    def test_compiles_once_and_counts_hits(self):
        cache = PlanCache()
        plan = cache.plan_for(bell_program())
        again = cache.plan_for(bell_program())
        assert plan is again
        assert plan.fingerprint is not None
        assert (cache.misses, cache.hits) == (1, 1)
        assert plan.cache_hits == 1

    def test_lru_eviction_is_bounded(self):
        cache = PlanCache(max_entries=2)
        programs = [bell_program() for _ in range(3)]
        programs[1].x(programs[1].registers[0][0])
        programs[2].h(programs[2].registers[0][1])
        for program in programs:
            cache.plan_for(program)
        assert len(cache) == 2

    def test_clear_resets_counters(self):
        cache = PlanCache()
        cache.plan_for(bell_program())
        cache.plan_for(bell_program())
        cache.clear()
        assert cache.stats() == {
            "plans": 0,
            "hits": 0,
            "misses": 0,
            "snapshot_hits": 0,
            "snapshot_misses": 0,
            "gates_saved": 0,
            "analysis_hits": 0,
            "analysis_misses": 0,
            "static_short_circuits": 0,
            "static_gates_saved": 0,
        }

    def test_sweep_compiles_each_unique_program_once(self):
        cache = default_plan_cache()
        session = repro.session(RunConfig(ensemble_size=8, seed=SEED))
        for significance in (0.01, 0.02, 0.05, 0.10):
            session._derive(significance=significance).check(bell_program())
        stats = cache.stats()
        assert stats["misses"] == 1  # <= 1 compile per unique program
        assert stats["hits"] == 3
        assert stats["snapshot_hits"] == 3

    def test_directly_built_plans_bypass_the_cache(self):
        # Plans without a fingerprint (the historical build_execution_plan
        # path) must never be served from or recorded into snapshots, so
        # low-level gate-count experiments stay exact.
        plan = build_execution_plan(bell_program())
        assert plan.fingerprint is None
        executor = BreakpointExecutor(ensemble_size=8, rng=SEED)
        executor.run_plan(plan)
        executor.run_plan(plan)
        assert executor.shared_prefix_gates_saved == 0
        assert executor.gates_applied == 2 * plan.total_gates


class TestSnapshotReuse:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cache_hit_run_identical_to_cold_run(self, backend):
        config = RunConfig(ensemble_size=16, seed=SEED, backend=backend)
        cache = default_plan_cache()
        cold = check_program(bell_program(), config)
        assert cache.stats()["snapshot_hits"] == 0
        warm = check_program(bell_program(), config)
        assert cache.stats()["snapshot_hits"] == 1
        assert warm.to_json() == cold.to_json()

    def test_snapshot_run_skips_the_walk(self):
        config = RunConfig(ensemble_size=8, seed=SEED)
        check_program(bell_program(), config)
        checker = repro.StatisticalAssertionChecker.from_config(
            bell_program(), config
        )
        checker.run()
        assert checker.executor.gates_applied == 0
        assert checker.executor.shared_prefix_gates_saved == 2

    def test_gate_noise_points_never_share_snapshots(self):
        from repro.sim import NoiseModel, depolarizing

        noise = NoiseModel.from_channels(depolarizing(0.01))
        config = RunConfig(
            ensemble_size=8, seed=SEED, backend="trajectory", noise=noise
        )
        check_program(bell_program(), config)
        check_program(bell_program(), config)
        assert default_plan_cache().stats()["snapshot_hits"] == 0

    def test_mid_circuit_reset_on_touched_qubit_disables_sharing(self):
        # PrepZ on a superposed qubit is a measurement-based reset that
        # consumes an rng draw, so snapshot sharing would desynchronise the
        # stream; the static walk check must refuse to share.
        program = Program("reset")
        q = program.qreg("q", 1)
        program.h(q[0])
        program.prep_z(q[0], 0)
        program.h(q[0])
        program.assert_superposition([q[0]], label="sup")
        config = RunConfig(ensemble_size=8, seed=SEED)
        cold = check_program(program, config)
        warm = check_program(program, config)
        assert default_plan_cache().stats()["snapshot_hits"] == 0
        assert warm.to_json() == cold.to_json()

    def test_describe_reports_reuse_counters(self):
        config = RunConfig(ensemble_size=8, seed=SEED)
        check_program(bell_program(), config)
        check_program(bell_program(), config)
        plan = default_plan_cache().plan_for(bell_program())
        text = plan.describe()
        assert "plan-cache hits" in text
        assert "shared-prefix gates saved" in text

    def test_assertion_cost_reports_cache_stats(self):
        from repro.workloads import assertion_cost

        config = RunConfig(ensemble_size=8, seed=SEED)
        check_program(bell_program(), config)
        check_program(bell_program(), config)
        row = assertion_cost(bell_program())
        assert row["plan_cache_hits"] >= 2
        assert row["shared_prefix_gates_saved"] == 2
        assert row["plan_cache"]["misses"] == 1
