"""Tests for the VQE path of the chemistry benchmark."""

import math

import numpy as np
import pytest

from repro.chemistry import (
    H2VQESolver,
    build_h2_qubit_hamiltonian,
    build_uccd_ansatz_program,
    uccd_generator,
)
from repro.chemistry.h2 import ELECTRON_ASSIGNMENTS, assignment_to_basis_state


class TestUccdAnsatz:
    def test_generator_is_hermitian_with_real_coefficients(self):
        generator = uccd_generator()
        assert generator.is_hermitian()
        assert len(generator) == 8
        for term in generator:
            assert abs(term.coefficient.imag) < 1e-12

    def test_zero_angle_prepares_hartree_fock(self):
        state = build_uccd_ansatz_program(0.0).simulate()
        hf = assignment_to_basis_state(ELECTRON_ASSIGNMENTS["G"])
        assert state.probability_of_outcome([0, 1, 2, 3], hf) == pytest.approx(1.0)

    def test_nonzero_angle_mixes_in_double_excitation(self):
        state = build_uccd_ansatz_program(0.3).simulate()
        hf = assignment_to_basis_state(ELECTRON_ASSIGNMENTS["G"])
        excited = assignment_to_basis_state(ELECTRON_ASSIGNMENTS["E3"])
        p_hf = state.probability_of_outcome([0, 1, 2, 3], hf)
        p_excited = state.probability_of_outcome([0, 1, 2, 3], excited)
        assert p_hf + p_excited == pytest.approx(1.0, abs=1e-9)
        assert 0.0 < p_excited < 1.0

    def test_ansatz_preserves_particle_number(self):
        state = build_uccd_ansatz_program(0.7).simulate()
        for basis, amplitude in state.to_dict().items():
            assert bin(basis).count("1") == 2


class TestVQESolver:
    @pytest.fixture(scope="class")
    def solver(self):
        return H2VQESolver()

    def test_energy_at_zero_is_hartree_fock(self, solver, h2_hamiltonian):
        hf_energy = np.real(
            h2_hamiltonian.to_matrix()[
                assignment_to_basis_state(ELECTRON_ASSIGNMENTS["G"]),
                assignment_to_basis_state(ELECTRON_ASSIGNMENTS["G"]),
            ]
        )
        assert solver.energy(0.0) == pytest.approx(hf_energy, abs=1e-9)

    def test_minimisation_reaches_fci_energy(self, solver):
        result = solver.minimize(tolerance=1e-5)
        assert result.converged
        assert result.energy == pytest.approx(solver.exact_ground_energy(), abs=1e-5)
        assert result.energy < solver.energy(0.0)  # below Hartree-Fock
        assert result.evaluations == len(result.history)

    def test_variational_property(self, solver):
        """No ansatz angle can dip below the exact ground-state energy."""
        ground = solver.exact_ground_energy()
        for theta in np.linspace(-math.pi / 2, math.pi / 2, 9):
            assert solver.energy(float(theta)) >= ground - 1e-9

    def test_energy_landscape_shape(self, solver):
        landscape = solver.energy_landscape(np.linspace(-0.5, 0.5, 5))
        assert len(landscape) == 5
        energies = [energy for _, energy in landscape]
        assert min(energies) <= energies[2]  # the minimum is away from theta = 0

    def test_sampled_energy_close_to_exact(self):
        sampled_solver = H2VQESolver(shots=512, rng=7)
        exact_solver = H2VQESolver()
        theta = 0.11
        assert sampled_solver.energy(theta) == pytest.approx(
            exact_solver.energy(theta), abs=0.1
        )

    def test_minimize_with_custom_energy_function(self, solver):
        result = solver.minimize(energy_function=lambda theta: (theta - 0.2) ** 2)
        assert result.theta == pytest.approx(0.2, abs=1e-3)

    def test_vqe_and_ipe_agree(self, solver):
        """Cross-validation between the two estimation algorithms (Section 5.2.1)."""
        from repro.chemistry import ELECTRON_ASSIGNMENTS as ASSIGNMENTS
        from repro.chemistry import H2EnergyEstimator

        vqe_energy = solver.minimize(tolerance=1e-4).energy
        ipe_energy = H2EnergyEstimator(num_bits=6, trotter_steps_per_unit=2).estimate_ipe(
            ASSIGNMENTS["G"]
        ).energy
        assert vqe_energy == pytest.approx(ipe_energy, abs=0.1)

    def test_result_row(self, solver):
        result = solver.minimize(tolerance=1e-3)
        row = result.as_row()
        assert set(row) == {"theta", "energy", "evaluations", "converged"}
