"""Sharded-sweep tests: the seeded identity matrix and seed discipline.

The contract under test: a sharded sweep is *byte-identical* to the serial
run of the same points on every backend family, because each point is a
self-contained (program, config) pair with its own spawned seed and results
merge in point order — worker count is pure mechanism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Program, RunConfig
from repro.workloads import (
    available_workers,
    detection_rate,
    false_positive_rate,
    run_sharded_points,
    sharded_sweep,
    spawn_point_seeds,
    sweep_point_configs,
)
from repro.workloads.clifford import build_ghz_chain_program

SEED = 20190622

BACKENDS = ("statevector", "density", "stabilizer", "auto", "trajectory")


def bell_program() -> Program:
    program = Program("bell")
    q = program.qreg("q", 2)
    program.h(q[0])
    program.cnot(q[0], q[1])
    program.assert_entangled([q[0]], [q[1]], label="bell pair")
    return program


class TestSeedSpawning:
    def test_seeds_are_deterministic_and_distinct(self):
        first = spawn_point_seeds(SEED, 16)
        second = spawn_point_seeds(SEED, 16)
        assert first == second
        assert len(set(first)) == 16

    def test_children_do_not_inherit_root_entropy(self):
        # The classic SeedSequence trap: every child's .entropy equals the
        # root's, so converting via .entropy would collapse all points onto
        # one stream.  The spawned state words must differ from the root.
        seeds = spawn_point_seeds(SEED, 4)
        assert SEED not in seeds

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_point_seeds(SEED, -1)


class TestSweepPointConfigs:
    def test_overrides_applied_and_seeds_pinned(self):
        base = RunConfig(ensemble_size=8, seed=SEED, shard=True, max_workers=4)
        configs = sweep_point_configs(
            base, [{"significance": 0.01}, {"significance": 0.10}]
        )
        assert [c.significance for c in configs] == [0.01, 0.10]
        assert all(c.seed is not None for c in configs)
        assert configs[0].seed != configs[1].seed
        # Workers must never recursively shard their own point.
        assert not any(c.shard for c in configs)

    def test_config_round_trips_shard_knobs(self):
        config = RunConfig(shard=True, max_workers=4)
        assert RunConfig.from_json(config.to_json()) == config

    def test_max_workers_validated(self):
        with pytest.raises(ValueError, match="max_workers"):
            RunConfig(max_workers=0)

    def test_available_workers_floor_is_one(self):
        assert available_workers(1) == 1
        assert available_workers(4) == 4
        assert available_workers(None) >= 1


class TestShardedIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_serial_vs_four_workers_byte_identical(self, backend):
        base = RunConfig(ensemble_size=8, seed=SEED, backend=backend)
        overrides = [
            {"significance": 0.01},
            {"significance": 0.05},
            {"readout_error": 0.02},
        ]
        serial = sharded_sweep(bell_program, base, overrides, max_workers=1)
        sharded = sharded_sweep(bell_program, base, overrides, max_workers=4)
        assert [r.to_json() for r in serial] == [r.to_json() for r in sharded]

    def test_reports_return_in_point_order(self):
        points = [
            (bell_program(), RunConfig(ensemble_size=4, seed=seed))
            for seed in spawn_point_seeds(SEED, 5)
        ]
        reports = run_sharded_points(points, max_workers=3)
        assert len(reports) == 5
        assert all(report.program_name == "bell" for report in reports)

    def test_sharded_detection_rate_matches_across_worker_counts(self):
        def build():
            return build_ghz_chain_program(4)

        rates = [
            detection_rate(
                build,
                trials=6,
                config=RunConfig(
                    ensemble_size=8, seed=SEED, shard=True, max_workers=workers
                ),
            )
            for workers in (1, 4)
        ]
        assert rates[0] == rates[1]

    def test_sharded_false_positive_rate_matches_serial_discipline(self):
        # shard=True draws exactly one root from the session stream, so two
        # seeded sharded experiments are themselves reproducible.
        config = RunConfig(ensemble_size=8, seed=SEED, shard=True, max_workers=2)
        first = false_positive_rate(bell_program(), trials=5, config=config)
        second = false_positive_rate(bell_program(), trials=5, config=config)
        assert first == second


class TestShardedSweepMechanics:
    def test_builder_invoked_once_per_point_in_parent(self):
        calls = []

        def build():
            calls.append(1)
            return bell_program()

        base = RunConfig(ensemble_size=4, seed=SEED)
        sharded_sweep(build, base, [{}, {}, {}], max_workers=1)
        assert len(calls) == 3

    def test_instance_backends_refuse_to_shard(self):
        from repro.sim import StatevectorBackend

        base = RunConfig(ensemble_size=4, seed=SEED, backend=StatevectorBackend())
        with pytest.raises(TypeError, match="registry-name"):
            sharded_sweep(bell_program, base, [{}], max_workers=2)
