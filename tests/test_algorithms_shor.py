"""Tests for Shor's algorithm: Table 2, Table 3, assertions and post-processing."""

import numpy as np
import pytest

from repro.algorithms.shor import (
    build_shor_program,
    expected_output_values,
    factors_from_order,
    order_from_measurement,
    run_shor,
    shor_joint_distribution,
    table2_rows,
)
from repro.core import check_program


class TestClassicalDriver:
    def test_table2_rows_match_paper(self):
        rows = table2_rows(modulus=15, base=7, iterations=4)
        assert [row["a"] for row in rows] == [7, 4, 1, 1]
        assert [row["a_inv"] for row in rows] == [13, 4, 1, 1]

    def test_expected_output_values(self):
        assert expected_output_values(15, 7, 3) == [0, 2, 4, 6]
        assert expected_output_values(15, 7, 4) == [0, 4, 8, 12]

    def test_order_from_measurement(self):
        assert order_from_measurement(2, 3, 15, 7) == 4
        assert order_from_measurement(6, 3, 15, 7) == 4
        assert order_from_measurement(0, 3, 15, 7) is None

    def test_factors_from_order(self):
        assert factors_from_order(15, 7, 4) == (3, 5)
        assert factors_from_order(15, 7, 3) is None  # odd order
        assert factors_from_order(15, 14, 2) is None  # a^{r/2} = -1 mod N

    def test_build_rejects_non_coprime_base(self):
        with pytest.raises(ValueError):
            build_shor_program(modulus=15, base=5)


class TestShorCircuit:
    @pytest.fixture(scope="class")
    def correct_circuit(self):
        return build_shor_program(modulus=15, base=7, num_output_bits=3)

    @pytest.fixture(scope="class")
    def buggy_circuit(self):
        return build_shor_program(
            modulus=15, base=7, num_output_bits=3, inverse_overrides={0: 12}
        )

    def test_output_distribution_is_uniform_over_multiples(self, correct_circuit):
        program = correct_circuit.program.without_assertions()
        state = program.simulate()
        output_indices = [program.qubit_index(q) for q in correct_circuit.control_register]
        distribution = state.probabilities(output_indices)
        expected = np.zeros(8)
        expected[[0, 2, 4, 6]] = 0.25
        assert np.allclose(distribution, expected, atol=1e-9)

    def test_work_register_cleared_when_correct(self, correct_circuit):
        table = shor_joint_distribution(correct_circuit)
        assert table[0].sum() == pytest.approx(1.0)
        assert np.allclose(table[1:, :], 0.0, atol=1e-9)

    def test_assertions_pass_on_correct_program(self, correct_circuit):
        report = check_program(correct_circuit.program, ensemble_size=32, rng=5)
        assert report.passed, report.summary()
        assert report.num_breakpoints == 4

    def test_table3_joint_distribution_shape(self, buggy_circuit):
        """Table 3: ancilla 0 with prob 1/2 (outputs 0,2,4,6 at 1/8), rest uniform 1/64."""
        table = shor_joint_distribution(buggy_circuit)
        # Row 0 (ancilla measured 0): probability 1/8 at outputs 0, 2, 4, 6.
        expected_row0 = np.zeros(8)
        expected_row0[[0, 2, 4, 6]] = 1 / 8
        assert np.allclose(table[0], expected_row0, atol=1e-9)
        assert table[0].sum() == pytest.approx(0.5)
        # Exactly four non-zero ancilla values, each a uniform row of 1/64.
        nonzero_rows = [
            row_index
            for row_index in range(1, table.shape[0])
            if table[row_index].sum() > 1e-9
        ]
        assert len(nonzero_rows) == 4
        for row_index in nonzero_rows:
            assert np.allclose(table[row_index], np.full(8, 1 / 64), atol=1e-9)

    def test_table3_nonzero_ancilla_values_match_paper(self, buggy_circuit):
        table = shor_joint_distribution(buggy_circuit)
        nonzero = {i for i in range(table.shape[0]) if table[i].sum() > 1e-9}
        assert nonzero == {0, 2, 7, 8, 13}

    def test_assertions_catch_wrong_inverse(self, buggy_circuit):
        report = check_program(buggy_circuit.program, ensemble_size=32, rng=5)
        assert not report.passed
        failing_types = {r.outcome.assertion_type for r in report.failures()}
        assert "classical" in failing_types  # ancilla no longer returns to 0


class TestEndToEnd:
    def test_run_shor_factors_fifteen(self):
        result = run_shor(modulus=15, base=7, shots=64, rng=1)
        assert result["factors"] == (3, 5)
        assert result["order"] == 4
        assert set(result["counts"]) <= {0, 2, 4, 6}
        assert result["expected_outputs"] == [0, 2, 4, 6]

    def test_run_shor_other_base(self):
        result = run_shor(modulus=15, base=2, shots=64, rng=3)
        assert result["factors"] == (3, 5)

    def test_run_shor_base_eleven(self):
        # 11 has order 2 mod 15; with 3 output bits the outputs are 0 and 4.
        result = run_shor(modulus=15, base=11, shots=64, rng=4)
        assert result["factors"] == (3, 5)
        assert set(result["counts"]) <= {0, 4}
