"""Memory-aware dense-width routing: budget derivation and executor policy.

The executor must never hand an over-budget width to a dense backend: a
dense request beyond ``dense_qubit_budget()`` raises an actionable error
*before* any allocation, while ``backend="auto"`` on a Clifford plan routes
to the tableau and records the decision on ``ExecutionPlan.routing_note``.
The budget itself resolves ``RunConfig.max_dense_qubits`` over the
``REPRO_MAX_DENSE_QUBITS`` environment variable over host memory.
"""

import pytest

from repro.compiler import BreakpointExecutor, build_execution_plan
from repro.core.config import RunConfig
from repro.sim.memory import (
    BYTES_PER_AMPLITUDE,
    ENV_MAX_DENSE_QUBITS,
    FALLBACK_MEMORY_BYTES,
    dense_qubit_budget,
    host_memory_bytes,
)
from repro.workloads import build_ghz_chain_program

GIB = 1024**3


class TestDenseQubitBudget:
    def test_budget_follows_memory(self):
        # floor(log2(bytes / 16)): 4 GiB -> 28 qubits, 32 GiB -> 31.
        assert dense_qubit_budget(memory_bytes=4 * GIB) == 28
        assert dense_qubit_budget(memory_bytes=32 * GIB) == 31
        assert dense_qubit_budget(memory_bytes=128 * GIB) == 33

    def test_budget_is_exact_at_power_boundaries(self):
        bytes_for_20 = (1 << 20) * BYTES_PER_AMPLITUDE
        assert dense_qubit_budget(memory_bytes=bytes_for_20) == 20
        assert dense_qubit_budget(memory_bytes=bytes_for_20 - 1) == 19

    def test_tiny_memory_never_goes_negative(self):
        assert dense_qubit_budget(memory_bytes=0) >= 1
        assert dense_qubit_budget(memory_bytes=17) >= 1

    def test_explicit_cap_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_MAX_DENSE_QUBITS, "30")
        assert dense_qubit_budget(max_dense_qubits=12) == 12

    def test_explicit_cap_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            dense_qubit_budget(max_dense_qubits=0)

    def test_env_var_overrides_memory(self, monkeypatch):
        monkeypatch.setenv(ENV_MAX_DENSE_QUBITS, "17")
        assert dense_qubit_budget(memory_bytes=128 * GIB) == 17

    def test_env_var_validation(self, monkeypatch):
        monkeypatch.setenv(ENV_MAX_DENSE_QUBITS, "not-a-number")
        with pytest.raises(ValueError, match="integer"):
            dense_qubit_budget()
        monkeypatch.setenv(ENV_MAX_DENSE_QUBITS, "-3")
        with pytest.raises(ValueError, match="positive"):
            dense_qubit_budget()

    def test_host_memory_probe_returns_something_sane(self):
        assert host_memory_bytes() >= min(FALLBACK_MEMORY_BYTES, 1 * GIB)


class TestExecutorRouting:
    def _plan(self, num_qubits=40):
        return build_execution_plan(build_ghz_chain_program(num_qubits))

    def test_dense_request_beyond_budget_is_refused(self, monkeypatch):
        monkeypatch.setenv(ENV_MAX_DENSE_QUBITS, "20")
        executor = BreakpointExecutor(ensemble_size=4, rng=1, backend="statevector")
        with pytest.raises(ValueError) as excinfo:
            executor.run_plan(self._plan(40))
        message = str(excinfo.value)
        assert "20-qubit budget" in message
        assert "REPRO_MAX_DENSE_QUBITS" in message
        assert "max_dense_qubits" in message

    def test_config_cap_refuses_dense_request(self):
        config = RunConfig(
            ensemble_size=4, seed=1, backend="statevector", max_dense_qubits=20
        )
        executor = BreakpointExecutor(config)
        with pytest.raises(ValueError, match="20-qubit budget"):
            executor.run_plan(self._plan(40))

    def test_auto_routes_clifford_plan_to_tableau(self, monkeypatch):
        monkeypatch.setenv(ENV_MAX_DENSE_QUBITS, "20")
        executor = BreakpointExecutor(ensemble_size=8, rng=1, backend="auto")
        plan = self._plan(40)
        measurements = executor.run_plan(plan)
        assert len(measurements) == plan.num_breakpoints
        assert executor.statevector_gates_applied == 0
        assert plan.routing_note is not None
        assert "40 qubits" in plan.routing_note
        assert "20-qubit dense budget" in plan.routing_note
        assert "routing:" in plan.describe()

    def test_within_budget_dense_request_runs(self, monkeypatch):
        monkeypatch.setenv(ENV_MAX_DENSE_QUBITS, "20")
        executor = BreakpointExecutor(ensemble_size=4, rng=1, backend="statevector")
        plan = self._plan(8)
        assert len(executor.run_plan(plan)) == plan.num_breakpoints
        assert plan.routing_note is None

    def test_config_round_trip_carries_caps(self):
        config = RunConfig(max_dense_qubits=24, max_support=128)
        clone = RunConfig.from_dict(config.to_dict())
        assert clone.max_dense_qubits == 24
        assert clone.max_support == 128

    def test_config_caps_must_be_positive(self):
        with pytest.raises(ValueError):
            RunConfig(max_dense_qubits=0)
        with pytest.raises(ValueError):
            RunConfig(max_support=-1)
