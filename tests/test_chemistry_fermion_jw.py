"""Tests for fermionic operators and the Jordan-Wigner transform."""

import numpy as np
import pytest

from repro.chemistry import FermionOperator, jordan_wigner, jordan_wigner_ladder
from repro.chemistry.pauli import PauliString, PauliSum


class TestFermionOperator:
    def test_constructors(self):
        creation = FermionOperator.creation(1)
        annihilation = FermionOperator.annihilation(0)
        number = FermionOperator.number(2)
        assert creation.num_modes() == 2
        assert annihilation.num_modes() == 1
        assert number.num_modes() == 3
        assert len(FermionOperator.identity()) == 1

    def test_addition_merges_terms(self):
        a = FermionOperator.number(0, 1.0)
        b = FermionOperator.number(0, 2.0)
        combined = a + b
        assert len(combined) == 1
        assert list(combined.terms.values())[0] == pytest.approx(3.0)

    def test_cancellation_removes_terms(self):
        a = FermionOperator.number(0, 1.0)
        assert len(a - a) == 0

    def test_multiplication_concatenates(self):
        product = FermionOperator.creation(0) * FermionOperator.annihilation(1)
        ((operators, coefficient),) = product.terms.items()
        assert operators == ((0, True), (1, False))
        assert coefficient == 1.0

    def test_scalar_multiplication(self):
        scaled = FermionOperator.number(0) * 2.5
        assert list(scaled.terms.values())[0] == pytest.approx(2.5)

    def test_hermitian_conjugate(self):
        term = FermionOperator.from_term(((0, True), (1, False)), 2.0j)
        conjugate = term.hermitian_conjugate()
        ((operators, coefficient),) = conjugate.terms.items()
        assert operators == ((1, True), (0, False))
        assert coefficient == pytest.approx(-2.0j)

    def test_is_hermitian(self):
        hopping = FermionOperator.from_term(((0, True), (1, False)), 1.0)
        assert not hopping.is_hermitian()
        assert (hopping + hopping.hermitian_conjugate()).is_hermitian()
        assert FermionOperator.number(0).is_hermitian()

    def test_number_operator_matrix(self):
        matrix = FermionOperator.number(0).to_matrix(2)
        assert np.allclose(np.diag(matrix), [0, 1, 0, 1])

    def test_anticommutation_relations(self):
        """{a_p, a_q^dag} = delta_pq and {a_p, a_q} = 0 as matrices."""
        modes = 3
        for p in range(modes):
            for q in range(modes):
                a_p = FermionOperator.annihilation(p).to_matrix(modes)
                a_q_dag = FermionOperator.creation(q).to_matrix(modes)
                a_q = FermionOperator.annihilation(q).to_matrix(modes)
                anticommutator = a_p @ a_q_dag + a_q_dag @ a_p
                expected = np.eye(1 << modes) if p == q else np.zeros((1 << modes,) * 2)
                assert np.allclose(anticommutator, expected), (p, q)
                assert np.allclose(a_p @ a_q + a_q @ a_p, 0.0)

    def test_creation_squared_is_zero(self):
        squared = FermionOperator.creation(1) * FermionOperator.creation(1)
        assert np.allclose(squared.to_matrix(2), 0.0)


class TestJordanWigner:
    def test_ladder_operator_form(self):
        lowering = jordan_wigner_ladder(0, False, 2)
        labels = {term.label(): term.coefficient for term in lowering.terms}
        assert labels["XI"] == pytest.approx(0.5)
        assert labels["YI"] == pytest.approx(0.5j)

    def test_creation_has_z_string(self):
        raising = jordan_wigner_ladder(2, True, 3)
        for term in raising.terms:
            assert term.ops[0] == "Z" and term.ops[1] == "Z"

    def test_out_of_range_mode(self):
        with pytest.raises(ValueError):
            jordan_wigner_ladder(3, True, 3)

    def test_number_operator_transform(self):
        number = jordan_wigner(FermionOperator.number(0), num_qubits=1)
        matrix = number.to_matrix()
        assert np.allclose(matrix, np.diag([0.0, 1.0]))

    def test_transform_matches_dense_fermionic_matrix(self):
        """JW(PauliSum) and the direct occupation-basis matrix must agree."""
        operator = (
            FermionOperator.from_term(((0, True), (1, False)), 0.7)
            + FermionOperator.from_term(((1, True), (0, False)), 0.7)
            + FermionOperator.number(2, -0.3)
            + FermionOperator.from_term(((2, True), (0, True), (0, False), (2, False)), 1.1)
        )
        transformed = jordan_wigner(operator, num_qubits=3)
        assert np.allclose(transformed.to_matrix(), operator.to_matrix(3), atol=1e-10)

    def test_transform_preserves_hermiticity(self):
        hopping = FermionOperator.from_term(((0, True), (2, False)), 1.0)
        hermitian = hopping + hopping.hermitian_conjugate()
        qubit_operator = jordan_wigner(hermitian, num_qubits=3)
        assert qubit_operator.is_hermitian()

    def test_empty_operator_requires_qubit_count(self):
        with pytest.raises(ValueError):
            jordan_wigner(FermionOperator())

    def test_identity_passthrough(self):
        identity = jordan_wigner(FermionOperator.identity(2.0), num_qubits=2)
        assert np.allclose(identity.to_matrix(), 2.0 * np.eye(4))
