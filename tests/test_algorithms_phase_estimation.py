"""Tests for textbook QPE and iterative phase estimation."""

import math

import numpy as np
import pytest

from repro.algorithms.phase_estimation import (
    IterativePhaseEstimator,
    build_qpe_program,
    phase_to_value,
    qpe_phase_distribution,
)
from repro.lang import Program


def make_phase_oracle(phase: float):
    """Controlled powers of a diagonal unitary with known eigenphase."""

    def apply(program: Program, control, system, power: int) -> None:
        program.cphase(control, system[0], 2 * math.pi * phase * power)

    return apply


def prepare_one(program: Program, system) -> None:
    program.x(system[0])


class TestQpe:
    @pytest.mark.parametrize("phase_bits,phase", [(3, 0.125), (3, 0.375), (4, 0.6875)])
    def test_exact_phase_read_out(self, phase_bits, phase):
        program, phase_register, _ = build_qpe_program(
            phase_bits, 1, make_phase_oracle(phase), prepare_one
        )
        distribution = qpe_phase_distribution(program, phase_register)
        peak = int(np.argmax(distribution))
        assert distribution[peak] == pytest.approx(1.0, abs=1e-9)
        assert phase_to_value(peak, phase_bits) == pytest.approx(phase)

    def test_inexact_phase_peaks_at_nearest_value(self):
        phase = 0.3  # not representable in 3 bits
        program, phase_register, _ = build_qpe_program(
            3, 1, make_phase_oracle(phase), prepare_one
        )
        distribution = qpe_phase_distribution(program, phase_register)
        peak = int(np.argmax(distribution))
        assert abs(phase_to_value(peak, 3) - phase) <= 1 / 8
        assert distribution[peak] > 0.4

    def test_eigenstate_zero_gives_zero_phase(self):
        # |0> is an eigenstate of the phase gate with eigenvalue 1.
        program, phase_register, _ = build_qpe_program(
            3, 1, make_phase_oracle(0.375), prepare_system=None
        )
        distribution = qpe_phase_distribution(program, phase_register)
        assert int(np.argmax(distribution)) == 0


class TestIpe:
    @pytest.mark.parametrize("phase", [0.0, 0.5, 0.3125, 0.8125])
    def test_exact_phases_recovered(self, phase):
        estimator = IterativePhaseEstimator(
            1, make_phase_oracle(phase), prepare_one, num_bits=4
        )
        result = estimator.estimate()
        assert result.phase == pytest.approx(phase)
        assert len(result.bits) == 4
        assert len(result.per_round_probabilities) == 4

    def test_bits_are_msb_first(self):
        estimator = IterativePhaseEstimator(
            1, make_phase_oracle(0.75), prepare_one, num_bits=2
        )
        result = estimator.estimate()
        assert result.bits == [1, 1]

    def test_sampled_mode_with_many_shots_matches_exact(self, rng):
        estimator = IterativePhaseEstimator(
            1, make_phase_oracle(0.4375), prepare_one, num_bits=4
        )
        exact = estimator.estimate()
        sampled = estimator.estimate(rng=rng, shots=200)
        assert sampled.phase == pytest.approx(exact.phase)

    def test_precision_refines_towards_true_phase(self):
        phase = 0.3
        errors = []
        for bits in (2, 4, 6):
            estimator = IterativePhaseEstimator(
                1, make_phase_oracle(phase), prepare_one, num_bits=bits
            )
            errors.append(abs(estimator.estimate().phase - phase))
        assert errors[2] <= errors[0]
        assert errors[2] <= 1 / (1 << 6)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IterativePhaseEstimator(1, make_phase_oracle(0.1), prepare_one, num_bits=0)
