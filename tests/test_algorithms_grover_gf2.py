"""Tests for GF(2^m) arithmetic and the Grover square-root search (Table 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.gf2 import GF2Field
from repro.algorithms.grover import (
    build_grover_program,
    grover_success_probability,
    optimal_iterations,
    run_grover,
)
from repro.core import check_program
from repro.lang import auto_place_assertions


class TestGF2Field:
    def test_field_construction(self):
        field = GF2Field(3)
        assert field.order == 8
        assert "GF2Field" in repr(field)

    def test_bad_degree_or_modulus(self):
        with pytest.raises(ValueError):
            GF2Field(0)
        with pytest.raises(ValueError):
            GF2Field(3, modulus_polynomial=0b111)  # degree 2 polynomial
        with pytest.raises(ValueError):
            GF2Field(20)  # no default polynomial stored

    def test_addition_is_xor(self):
        field = GF2Field(4)
        assert field.add(0b1010, 0b0110) == 0b1100

    def test_multiplication_by_one_and_zero(self):
        field = GF2Field(4)
        for a in field.elements():
            assert field.multiply(a, 1) == a
            assert field.multiply(a, 0) == 0

    @pytest.mark.parametrize("degree", [2, 3, 4])
    def test_multiplication_commutative_and_associative(self, degree):
        field = GF2Field(degree)
        elements = list(field.elements())
        for a in elements[:5]:
            for b in elements[:5]:
                assert field.multiply(a, b) == field.multiply(b, a)
                for c in elements[:3]:
                    assert field.multiply(field.multiply(a, b), c) == field.multiply(
                        a, field.multiply(b, c)
                    )

    @pytest.mark.parametrize("degree", [2, 3, 4, 5])
    def test_every_nonzero_element_has_inverse(self, degree):
        field = GF2Field(degree)
        for a in range(1, field.order):
            assert field.multiply(a, field.inverse(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            GF2Field(3).inverse(0)

    @pytest.mark.parametrize("degree", [2, 3, 4, 5])
    def test_sqrt_inverts_squaring(self, degree):
        field = GF2Field(degree)
        for a in field.elements():
            assert field.square(field.sqrt(a)) == a
            assert field.sqrt(field.square(a)) == a

    def test_squaring_matrix_reproduces_square(self):
        field = GF2Field(4)
        matrix = field.squaring_matrix()
        for a in field.elements():
            assert field.apply_bit_matrix(matrix, a) == field.square(a)

    def test_squaring_matrix_invertible(self):
        field = GF2Field(5)
        matrix = field.squaring_matrix().astype(int)
        # Invertible over GF(2): determinant must be odd.
        determinant = int(round(np.linalg.det(matrix)))
        assert determinant % 2 == 1

    @given(degree=st.sampled_from([2, 3, 4]), a=st.integers(0, 15), b=st.integers(0, 15))
    @settings(max_examples=60, deadline=None)
    def test_frobenius_property(self, degree, a, b):
        """(a + b)^2 = a^2 + b^2 in characteristic 2."""
        field = GF2Field(degree)
        a %= field.order
        b %= field.order
        assert field.square(field.add(a, b)) == field.add(field.square(a), field.square(b))


class TestGrover:
    def test_optimal_iterations(self):
        assert optimal_iterations(8) == 2
        assert optimal_iterations(16) == 3
        assert optimal_iterations(4) == 1
        with pytest.raises(ValueError):
            optimal_iterations(0)

    @pytest.mark.parametrize("style", ["projectq", "scaffold"])
    def test_search_finds_square_root(self, style):
        result = run_grover(degree=3, target=5, style=style, rng=2)
        assert result["found"]
        assert result["expected"] == GF2Field(3).sqrt(5)
        assert result["success_probability"] > 0.8

    def test_both_styles_produce_identical_distributions(self):
        a = build_grover_program(degree=3, target=6, style="projectq", with_assertions=False)
        b = build_grover_program(degree=3, target=6, style="scaffold", with_assertions=False)
        prog_a = a.program.without_assertions()
        prog_b = b.program.without_assertions()
        state_a = prog_a.simulate()
        state_b = prog_b.simulate()
        dist_a = state_a.probabilities([prog_a.qubit_index(q) for q in a.search_register])
        dist_b = state_b.probabilities([prog_b.qubit_index(q) for q in b.search_register])
        assert np.allclose(dist_a, dist_b, atol=1e-9)

    @pytest.mark.parametrize("target", [0, 1, 3, 7])
    def test_search_works_for_various_targets(self, target):
        circuit = build_grover_program(degree=3, target=target, with_assertions=False)
        assert grover_success_probability(circuit) > 0.8

    def test_degree_four_search(self):
        result = run_grover(degree=4, target=9, rng=5)
        assert result["found"]
        assert result["iterations"] == 3

    def test_assertions_pass_on_correct_program(self):
        circuit = build_grover_program(degree=3, target=5, style="projectq")
        report = check_program(circuit.program, ensemble_size=32, rng=3)
        assert report.passed, report.summary()
        types = [r.outcome.assertion_type for r in report.records]
        assert types == ["superposition", "classical", "product"]

    def test_scaffold_style_assertions_pass(self):
        circuit = build_grover_program(degree=3, target=5, style="scaffold")
        report = check_program(circuit.program, ensemble_size=32, rng=3)
        assert report.passed

    def test_auto_placed_assertions_match_manual_intent(self):
        """Section 5.1.1: the pattern scanner places the product assertions itself.

        Only the reliable compute/uncompute (product) suggestions are inserted;
        the control-block entanglement suggestions are heuristic hints that a
        programmer would review (the suggestion list still contains them).
        """
        circuit = build_grover_program(degree=3, target=5, style="projectq", with_assertions=False)
        all_suggestions = auto_place_assertions(circuit.program, kinds=("product",))
        assert all_suggestions and all(s.kind == "product" for s in all_suggestions)
        report = check_program(circuit.program, ensemble_size=32, rng=4)
        assert report.passed
        assert all(r.outcome.assertion_type == "product" for r in report.records)

    def test_invalid_style_and_target(self):
        with pytest.raises(ValueError):
            build_grover_program(style="qsharp")
        with pytest.raises(ValueError):
            build_grover_program(degree=3, target=9)
