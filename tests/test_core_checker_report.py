"""Tests for the end-to-end checker, debug reports and exceptions."""

import numpy as np
import pytest

from repro.core import (
    AssertionViolation,
    StatisticalAssertionChecker,
    check_program,
    build_evaluator,
)
from repro.core.report import DebugReport, format_table
from repro.lang import Program
from repro.lang.instructions import (
    ClassicalAssertInstruction,
    EntangledAssertInstruction,
    ProductAssertInstruction,
    SuperpositionAssertInstruction,
)


def bell_program(with_bug=False):
    program = Program("bell")
    q = program.qreg("q", 2)
    program.h(q[0])
    if not with_bug:
        program.cnot(q[0], q[1])
    program.assert_entangled([q[0]], [q[1]], label="bell pair")
    return program


class TestBuildEvaluator:
    def test_mapping_of_all_assertion_types(self):
        program = Program()
        a = program.qreg("a", 2)
        b = program.qreg("b", 1)
        instructions = [
            ClassicalAssertInstruction(measured=tuple(a), value=2),
            SuperpositionAssertInstruction(measured=tuple(a)),
            EntangledAssertInstruction(group_a=tuple(a), group_b=tuple(b)),
            ProductAssertInstruction(group_a=tuple(a), group_b=tuple(b)),
        ]
        types = [build_evaluator(i, 0.05).assertion_type for i in instructions]
        assert types == ["classical", "superposition", "entangled", "product"]

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            build_evaluator("not an assertion", 0.05)


class TestChecker:
    def test_bell_program_passes(self, rng):
        report = check_program(bell_program(), ensemble_size=16, rng=rng)
        assert report.passed
        assert report.num_breakpoints == 1
        assert report.records[0].outcome.assertion_type == "entangled"

    def test_missing_cnot_caught(self, rng):
        report = check_program(bell_program(with_bug=True), ensemble_size=32, rng=rng)
        assert not report.passed
        assert report.first_failure().outcome.assertion_type == "entangled"

    def test_check_raises_on_violation(self, rng):
        checker = StatisticalAssertionChecker(
            bell_program(with_bug=True), ensemble_size=32, rng=rng
        )
        with pytest.raises(AssertionViolation) as excinfo:
            checker.check()
        assert excinfo.value.outcome.assertion_type == "entangled"

    def test_check_returns_report_when_clean(self, rng):
        checker = StatisticalAssertionChecker(bell_program(), ensemble_size=16, rng=rng)
        report = checker.check()
        assert report.passed

    def test_rerun_mode_agrees_with_sample_mode(self):
        program = Program()
        q = program.qreg("q", 2)
        program.prepare_int(q, 2)
        program.assert_classical(q, 2)
        for mode in ("sample", "rerun"):
            checker = StatisticalAssertionChecker(program, ensemble_size=8, rng=0, mode=mode)
            assert checker.run().passed

    def test_multiple_breakpoints_ordered(self, rng):
        program = Program()
        q = program.qreg("q", 2)
        program.prepare_int(q, 1)
        program.assert_classical(q, 1, label="first")
        program.h(q[0])
        program.h(q[1])
        program.assert_superposition(q, label="second")
        report = check_program(program, ensemble_size=64, rng=rng)
        assert [r.name for r in report.records] == ["first", "second"]
        assert [r.gates_before for r in report.records] == [0, 2]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StatisticalAssertionChecker(bell_program(), ensemble_size=0)
        with pytest.raises(ValueError):
            StatisticalAssertionChecker(bell_program(), mode="teleport")

    def test_seeded_runs_are_reproducible(self):
        first = check_program(bell_program(), ensemble_size=16, rng=42)
        second = check_program(bell_program(), ensemble_size=16, rng=42)
        assert first.p_values() == second.p_values()


class TestReport:
    def test_summary_contains_table_and_verdict(self, rng):
        report = check_program(bell_program(), ensemble_size=16, rng=rng)
        text = report.summary()
        assert "breakpoint" in text
        assert "ALL ASSERTIONS HELD" in text
        assert str(report) == text

    def test_failure_listing(self, rng):
        report = check_program(bell_program(with_bug=True), ensemble_size=32, rng=rng)
        assert len(report.failures()) == 1
        assert "VIOLATED" in report.summary()
        rows = report.rows()
        assert rows[0]["passed"] is False

    def test_empty_report(self):
        report = DebugReport(program_name="empty")
        assert report.passed
        assert report.first_failure() is None
        assert "(no rows)" in report.summary()

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 23, "b": "yz"}]
        rendered = format_table(rows)
        lines = rendered.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
