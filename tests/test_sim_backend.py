"""Tests for the pluggable simulation-backend layer."""

import numpy as np
import pytest

from repro.lang import Program
from repro.sim import (
    BACKENDS,
    SimulationBackend,
    Statevector,
    StatevectorBackend,
    gates,
    make_backend,
    register_backend,
)
from repro.sim.kernels import apply_controlled_inplace, apply_matrix_inplace


class TestRegistry:
    def test_default_is_statevector(self):
        backend = make_backend(None)
        assert isinstance(backend, StatevectorBackend)

    def test_lookup_by_name(self):
        assert isinstance(make_backend("statevector"), StatevectorBackend)

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown backend"):
            make_backend("tensor_network")

    def test_instance_passes_through(self):
        backend = StatevectorBackend(2)
        assert make_backend(backend) is backend

    def test_factory_is_called(self):
        assert isinstance(make_backend(StatevectorBackend), StatevectorBackend)

    def test_bad_spec_raises(self):
        with pytest.raises(TypeError):
            make_backend(42)

    def test_register_backend(self):
        class Custom(StatevectorBackend):
            name = "custom_test"

        register_backend("custom_test", Custom)
        try:
            assert isinstance(make_backend("custom_test"), Custom)
        finally:
            del BACKENDS["custom_test"]


class TestStatevectorBackend:
    def test_requires_initialisation(self):
        backend = StatevectorBackend()
        with pytest.raises(RuntimeError):
            backend.probabilities()

    def test_initialize_to_zero_state(self):
        backend = StatevectorBackend(3)
        assert backend.num_qubits == 3
        assert backend.probabilities()[0] == pytest.approx(1.0)

    def test_initialize_from_state(self):
        initial = Statevector.from_label("10")
        backend = StatevectorBackend().initialize(2, initial_state=initial)
        assert backend.probabilities()[2] == pytest.approx(1.0)
        # The backend copies: mutating it leaves the template untouched.
        backend.apply_gate("x", [0])
        assert initial.probabilities()[2] == pytest.approx(1.0)

    def test_initialize_wrong_size_raises(self):
        with pytest.raises(ValueError):
            StatevectorBackend().initialize(3, initial_state=Statevector(2))

    def test_apply_gate_named_and_parameterised(self):
        backend = StatevectorBackend(1)
        backend.apply_gate("h", [0])
        backend.apply_gate("rz", [0], np.pi)
        state = backend.to_statevector()
        expected = Statevector(1).apply_matrix(gates.H, [0]).apply_matrix(
            gates.rz(np.pi), [0]
        )
        assert state.equiv(expected)

    def test_apply_gate_validates(self):
        backend = StatevectorBackend(1)
        with pytest.raises(KeyError):
            backend.apply_gate("warp", [0])
        with pytest.raises(ValueError):
            backend.apply_gate("h", [0], 0.5)

    def test_gate_counter(self):
        backend = StatevectorBackend(2)
        backend.apply_gate("h", [0])
        backend.apply_controlled(gates.X, [0], [1])
        backend.apply_matrix(gates.SWAP, [0, 1])
        assert backend.gates_applied == 3

    def test_snapshot_restore_roundtrip(self, rng):
        backend = StatevectorBackend(2)
        backend.apply_gate("h", [0])
        backend.apply_controlled(gates.X, [0], [1])
        before = backend.probabilities().copy()
        token = backend.snapshot()
        backend.measure([0, 1], rng=rng)  # collapses the Bell state
        assert np.max(backend.probabilities()) == pytest.approx(1.0)
        backend.restore(token)
        assert np.allclose(backend.probabilities(), before)
        # The token survives multiple restores.
        backend.measure([0, 1], rng=rng)
        backend.restore(token)
        assert np.allclose(backend.probabilities(), before)

    def test_restore_wrong_size_raises(self):
        backend = StatevectorBackend(2)
        with pytest.raises(ValueError):
            backend.restore(np.zeros(2, dtype=complex))

    def test_sample_does_not_collapse(self, rng):
        backend = StatevectorBackend(2)
        backend.apply_gate("h", [0])
        probs = backend.probabilities().copy()
        outcomes = backend.sample([0], shots=64, rng=rng)
        assert set(int(v) for v in outcomes) == {0, 1}
        assert np.allclose(backend.probabilities(), probs)

    def test_to_statevector_copy_semantics(self):
        backend = StatevectorBackend(1)
        copied = backend.to_statevector(copy=True)
        copied.apply_matrix(gates.X, [0])
        assert backend.probabilities()[0] == pytest.approx(1.0)
        shared = backend.to_statevector(copy=False)
        shared.apply_matrix(gates.X, [0])
        assert backend.probabilities()[1] == pytest.approx(1.0)

    def test_abstract_to_statevector_is_optional(self):
        class Minimal(SimulationBackend):
            name = "minimal"

            def initialize(self, num_qubits, initial_state=None):
                return self

            @property
            def num_qubits(self):
                return 0

            def snapshot(self):
                return None

            def restore(self, token):
                return self

            def apply_matrix(self, matrix, qubits):
                return self

            def apply_controlled(self, matrix, controls, targets):
                return self

            def probabilities(self, qubits=None):
                return np.ones(1)

            def sample(self, qubits=None, shots=1, rng=None):
                return np.zeros(shots, dtype=int)

            def measure(self, qubits, rng=None):
                return 0

        with pytest.raises(NotImplementedError):
            Minimal().to_statevector()


class TestKernels:
    """The masked controlled kernel must match the dense controlled unitary."""

    @pytest.mark.parametrize("num_controls", [1, 2, 3])
    @pytest.mark.parametrize("num_targets", [1, 2])
    def test_controlled_matches_dense(self, num_controls, num_targets, rng):
        num_qubits = num_controls + num_targets + 1
        dim = 1 << num_qubits
        amplitudes = rng.normal(size=dim) + 1j * rng.normal(size=dim)
        amplitudes /= np.linalg.norm(amplitudes)
        base = np.linalg.qr(
            rng.normal(size=(1 << num_targets, 1 << num_targets))
            + 1j * rng.normal(size=(1 << num_targets, 1 << num_targets))
        )[0]
        order = rng.permutation(num_qubits)
        controls = [int(q) for q in order[:num_controls]]
        targets = [int(q) for q in order[num_controls : num_controls + num_targets]]

        masked = amplitudes.copy()
        apply_controlled_inplace(masked, num_qubits, base, controls, targets)

        dense = amplitudes.copy()
        full = gates.controlled(base, num_controls=num_controls)
        apply_matrix_inplace(dense, num_qubits, full, controls + targets)

        assert np.allclose(masked, dense, atol=1e-12)

    def test_untouched_amplitudes_are_bit_identical(self, rng):
        """The masked kernel must not even renormalise the identity subspace."""
        amplitudes = rng.normal(size=8) + 1j * rng.normal(size=8)
        original = amplitudes.copy()
        apply_controlled_inplace(amplitudes, 3, gates.X, [0], [1])
        untouched = [i for i in range(8) if (i & 1) == 0]
        assert all(amplitudes[i] == original[i] for i in untouched)

    def test_single_qubit_fast_path(self, rng):
        amplitudes = rng.normal(size=16) + 1j * rng.normal(size=16)
        for qubit in range(4):
            fast = amplitudes.copy()
            apply_matrix_inplace(fast, 4, gates.H, [qubit])
            reference = Statevector(4, amplitudes.copy())
            reference.apply_matrix(gates.H, [qubit])
            assert np.allclose(fast, reference.data, atol=1e-12)


class TestProgramBackendRouting:
    def test_simulate_accepts_backend_name(self):
        program = Program()
        q = program.qreg("q", 1)
        program.h(q[0])
        state = program.simulate(backend="statevector")
        assert state.probabilities()[0] == pytest.approx(0.5)

    def test_simulate_leaves_state_on_explicit_backend(self):
        program = Program()
        q = program.qreg("q", 2)
        program.h(q[0])
        program.cnot(q[0], q[1])
        backend = StatevectorBackend()
        state = program.simulate(backend=backend)
        assert backend.gates_applied == 2
        assert np.allclose(backend.probabilities(), state.probabilities())
        # The returned state is a copy, not an alias of the backend state.
        state.apply_matrix(gates.X, [0])
        assert not np.allclose(backend.probabilities(), state.probabilities())

    def test_simulate_unknown_backend_raises(self):
        program = Program()
        program.qreg("q", 1)
        with pytest.raises(KeyError):
            program.simulate(backend="density_matrix")

    def test_unitary_through_backend(self):
        program = Program()
        q = program.qreg("q", 1)
        program.h(q[0])
        assert np.allclose(program.unitary(backend="statevector"), gates.H)
