"""Tests for compute/uncompute, control blocks and assertion auto-placement."""

import numpy as np
import pytest

from repro.core import check_program
from repro.lang import (
    Program,
    auto_place_assertions,
    compute,
    control,
    uncompute,
)
from repro.lang.instructions import (
    BlockMarkerInstruction,
    EntangledAssertInstruction,
    GateInstruction,
    ProductAssertInstruction,
)
from repro.lang.patterns import PatternScanner


class TestComputeUncompute:
    def test_uncompute_reverses_and_inverts(self):
        program = Program()
        q = program.qreg("q", 2)
        with compute(program, involved=[q[1]]):
            program.h(q[1])
            program.rz(q[1], 0.7)
        uncompute(program)
        gate_names = [i.name for i in program.gate_instructions()]
        assert gate_names == ["h", "rz", "rz", "h"]
        params = [i.params for i in program.gate_instructions()]
        assert params[1] == (0.7,)
        assert params[2] == (-0.7,)
        assert np.allclose(program.unitary(), np.eye(4), atol=1e-10)

    def test_uncompute_without_compute_fails(self):
        program = Program()
        program.qreg("q", 1)
        with pytest.raises(ValueError):
            uncompute(program)

    def test_nested_compute_blocks_uncompute_in_lifo_order(self):
        program = Program()
        q = program.qreg("q", 2)
        with compute(program):
            program.x(q[0])
            with compute(program):
                program.h(q[1])
            uncompute(program)  # uncompute inner
        uncompute(program)  # uncompute outer
        assert np.allclose(program.unitary(), np.eye(4), atol=1e-10)

    def test_explicit_record_argument(self):
        program = Program()
        q = program.qreg("q", 1)
        with compute(program) as record:
            program.h(q[0])
        uncompute(program, record)
        assert np.allclose(program.unitary(), np.eye(2), atol=1e-10)

    def test_block_markers_emitted(self):
        program = Program()
        q = program.qreg("q", 1)
        with compute(program):
            program.x(q[0])
        uncompute(program)
        kinds = [
            (i.kind, i.boundary)
            for i in program.instructions
            if isinstance(i, BlockMarkerInstruction)
        ]
        assert kinds == [
            ("compute", "begin"),
            ("compute", "end"),
            ("uncompute", "begin"),
            ("uncompute", "end"),
        ]


class TestControlBlock:
    def test_control_block_adds_controls(self):
        program = Program()
        c = program.qreg("c", 1)
        t = program.qreg("t", 2)
        with control(program, c):
            program.x(t[0])
            program.h(t[1])
        for instruction in program.gate_instructions():
            assert c[0] in instruction.controls

    def test_control_block_equivalent_to_controlled_gates(self):
        direct = Program("direct")
        c1 = direct.qreg("c", 1)
        t1 = direct.qreg("t", 1)
        direct.cnot(c1[0], t1[0])

        patterned = Program("pattern")
        c2 = patterned.qreg("c", 1)
        t2 = patterned.qreg("t", 1)
        with control(patterned, c2):
            patterned.x(t2[0])

        assert np.allclose(direct.unitary(), patterned.unitary())

    def test_control_block_rejects_non_gates(self):
        program = Program()
        c = program.qreg("c", 1)
        t = program.qreg("t", 1)
        with pytest.raises(ValueError):
            with control(program, c):
                program.prep_z(t[0], 0)


class TestAutoPlacement:
    def _controlled_adder_like_program(self):
        """A program with a control block and a compute/uncompute pair."""
        program = Program("auto")
        c = program.qreg("c", 1)
        data = program.qreg("d", 2)
        scratch = program.qreg("s", 1)
        program.h(c[0])
        with compute(program, involved=[scratch[0]]):
            program.cnot(data[0], scratch[0])
        # The control block only touches data[1], so the later uncompute of the
        # scratch qubit (which depends on data[0]) remains valid.
        with control(program, c):
            program.x(data[1])
        uncompute(program)
        return program, c, data, scratch

    def test_scanner_finds_both_patterns(self):
        program, c, data, scratch = self._controlled_adder_like_program()
        suggestions = PatternScanner(program).suggest()
        kinds = sorted(s.kind for s in suggestions)
        assert kinds == ["entangled", "product"]
        entangled = next(s for s in suggestions if s.kind == "entangled")
        assert set(entangled.group_a) == {c[0]}
        assert set(entangled.group_b) == {data[1]}

    def test_auto_place_inserts_assertions(self):
        program, *_ = self._controlled_adder_like_program()
        before = len(program.assertions())
        suggestions = auto_place_assertions(program)
        assert len(program.assertions()) == before + len(suggestions)
        types = {type(a) for a in program.assertions()}
        assert EntangledAssertInstruction in types
        assert ProductAssertInstruction in types

    def test_auto_placed_assertions_pass_on_correct_program(self, rng):
        program, *_ = self._controlled_adder_like_program()
        auto_place_assertions(program)
        report = check_program(program, ensemble_size=32, rng=rng)
        assert report.passed, report.summary()

    def test_scanner_on_program_without_blocks(self):
        program = Program()
        q = program.qreg("q", 2)
        program.h(q[0]).cnot(q[0], q[1])
        assert PatternScanner(program).suggest() == []
