"""Unit and property tests for the statevector simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Statevector, gates


class TestConstruction:
    def test_default_is_all_zeros_state(self):
        state = Statevector(3)
        assert state.amplitude(0) == 1.0
        assert state.norm() == pytest.approx(1.0)

    def test_from_int(self):
        state = Statevector.from_int(5, 3)
        assert state.amplitude(5) == 1.0
        assert state.probability_of_outcome([0, 1, 2], 5) == pytest.approx(1.0)

    def test_from_int_out_of_range(self):
        with pytest.raises(ValueError):
            Statevector.from_int(8, 3)

    def test_from_label_msb_first(self):
        state = Statevector.from_label("10")
        # qubit 1 = 1, qubit 0 = 0 -> integer 2
        assert state.amplitude(2) == 1.0

    def test_from_label_rejects_garbage(self):
        with pytest.raises(ValueError):
            Statevector.from_label("01x")

    def test_uniform_superposition(self):
        state = Statevector.uniform_superposition(3)
        assert np.allclose(state.probabilities(), np.full(8, 1 / 8))

    def test_wrong_amplitude_count_rejected(self):
        with pytest.raises(ValueError):
            Statevector(2, np.ones(3))

    def test_copy_is_independent(self):
        state = Statevector(1)
        clone = state.copy()
        clone.apply_matrix(gates.X, [0])
        assert state.amplitude(0) == 1.0
        assert clone.amplitude(1) == 1.0


class TestGateApplication:
    def test_x_flips_bit(self):
        state = Statevector(2)
        state.apply_matrix(gates.X, [1])
        assert state.amplitude(2) == 1.0

    def test_h_creates_superposition(self):
        state = Statevector(1)
        state.apply_matrix(gates.H, [0])
        assert np.allclose(state.probabilities(), [0.5, 0.5])

    def test_cnot_on_arbitrary_qubit_pair(self):
        # |q2 q1 q0> = |001>; CNOT control q0 target q2 -> |101> = 5
        state = Statevector.from_int(1, 3)
        state.apply_matrix(gates.CNOT, [0, 2])
        assert state.amplitude(5) == pytest.approx(1.0)

    def test_apply_controlled_matches_explicit_matrix(self):
        state_a = Statevector.from_int(0b011, 3)
        state_b = state_a.copy()
        state_a.apply_controlled(gates.X, controls=[0, 1], targets=[2])
        state_b.apply_matrix(gates.CCNOT, [0, 1, 2])
        assert state_a == state_b

    def test_apply_named_gate(self):
        state = Statevector(1)
        state.apply_gate("h", [0])
        state.apply_gate("rz", [0], math.pi)
        assert state.is_normalized()

    def test_apply_unknown_gate(self):
        with pytest.raises(KeyError):
            Statevector(1).apply_gate("frobnicate", [0])

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            Statevector(2).apply_matrix(gates.CNOT, [0, 0])

    def test_out_of_range_qubit_rejected(self):
        with pytest.raises(ValueError):
            Statevector(2).apply_matrix(gates.X, [2])

    def test_wrong_matrix_size_rejected(self):
        with pytest.raises(ValueError):
            Statevector(2).apply_matrix(gates.CNOT, [0])

    def test_control_target_overlap_rejected(self):
        with pytest.raises(ValueError):
            Statevector(2).apply_controlled(gates.X, [0], [0])

    def test_bell_state_preparation(self):
        state = Statevector(2)
        state.apply_matrix(gates.H, [0])
        state.apply_controlled(gates.X, [0], [1])
        amplitudes = state.to_dict()
        assert set(amplitudes) == {0, 3}
        assert amplitudes[0] == pytest.approx(1 / math.sqrt(2))
        assert amplitudes[3] == pytest.approx(1 / math.sqrt(2))

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_random_single_qubit_gates_preserve_norm(self, seed):
        generator = np.random.default_rng(seed)
        state = Statevector(3)
        for _ in range(10):
            qubit = int(generator.integers(0, 3))
            theta = float(generator.uniform(-math.pi, math.pi))
            state.apply_matrix(gates.ry(theta), [qubit])
            state.apply_matrix(gates.rz(theta / 2), [qubit])
        assert state.is_normalized()


class TestProbabilities:
    def test_marginal_probabilities_order(self):
        # state |q1 q0> = |10> (integer 2): qubit 0 is 0, qubit 1 is 1
        state = Statevector.from_int(2, 2)
        assert np.allclose(state.probabilities([0]), [1.0, 0.0])
        assert np.allclose(state.probabilities([1]), [0.0, 1.0])
        # Joint distribution over (q1, q0) with q1 the low bit of the outcome.
        assert np.allclose(state.probabilities([1, 0]), [0.0, 1.0, 0.0, 0.0])

    def test_probabilities_sum_to_one(self):
        state = Statevector.uniform_superposition(4)
        assert state.probabilities([1, 3]).sum() == pytest.approx(1.0)

    def test_probability_of_outcome(self):
        state = Statevector.from_int(6, 3)
        assert state.probability_of_outcome([1, 2], 3) == pytest.approx(1.0)
        assert state.probability_of_outcome([0], 0) == pytest.approx(1.0)

    def test_probability_of_outcome_out_of_range(self):
        with pytest.raises(ValueError):
            Statevector(2).probability_of_outcome([0], 2)


class TestSamplingAndMeasurement:
    def test_sampling_deterministic_state(self, rng):
        state = Statevector.from_int(5, 3)
        samples = state.sample(shots=50, rng=rng)
        assert set(samples.tolist()) == {5}

    def test_sample_counts(self, rng):
        state = Statevector(1)
        state.apply_matrix(gates.H, [0])
        counts = state.sample_counts(shots=2000, rng=rng)
        assert abs(counts[0] - 1000) < 150

    def test_sampling_does_not_collapse(self, rng):
        state = Statevector(1)
        state.apply_matrix(gates.H, [0])
        state.sample(shots=10, rng=rng)
        assert np.allclose(state.probabilities(), [0.5, 0.5])

    def test_measure_collapses(self, rng):
        state = Statevector(2)
        state.apply_matrix(gates.H, [0])
        state.apply_controlled(gates.X, [0], [1])
        outcome = state.measure([0, 1], rng=rng)
        assert outcome in (0, 3)
        assert state.probability_of_outcome([0, 1], outcome) == pytest.approx(1.0)

    def test_bell_measurements_correlated(self, rng):
        outcomes = []
        for _ in range(20):
            state = Statevector(2)
            state.apply_matrix(gates.H, [0])
            state.apply_controlled(gates.X, [0], [1])
            outcomes.append(state.measure([0, 1], rng=rng))
        assert set(outcomes) <= {0, 3}

    def test_project_impossible_outcome(self):
        state = Statevector.from_int(0, 2)
        with pytest.raises(ValueError):
            state.project([0], 1)

    def test_reset_qubit(self, rng):
        state = Statevector.from_int(3, 2)
        state.reset_qubit(0, rng=rng)
        assert state.probability_of_outcome([0], 0) == pytest.approx(1.0)
        assert state.probability_of_outcome([1], 1) == pytest.approx(1.0)


class TestObservablesAndComparison:
    def test_expectation_value_of_z(self):
        state = Statevector.from_int(1, 1)
        assert state.expectation_value(gates.Z, [0]) == pytest.approx(-1.0)

    def test_expectation_value_full_register(self):
        state = Statevector.uniform_superposition(2)
        matrix = np.kron(gates.Z, gates.Z)
        assert state.expectation_value(matrix) == pytest.approx(0.0)

    def test_inner_and_fidelity(self):
        a = Statevector.from_int(0, 1)
        b = Statevector(1)
        b.apply_matrix(gates.H, [0])
        assert a.fidelity(b) == pytest.approx(0.5)
        assert abs(a.inner(b)) == pytest.approx(1 / math.sqrt(2))

    def test_equiv_up_to_global_phase(self):
        a = Statevector.from_int(1, 1)
        b = Statevector(1, data=np.array([0.0, 1j]))
        assert a.equiv(b)
        assert a != b

    def test_incompatible_sizes_rejected(self):
        with pytest.raises(ValueError):
            Statevector(1).inner(Statevector(2))

    def test_normalize(self):
        state = Statevector(1, data=np.array([3.0, 4.0]))
        state.normalize()
        assert state.norm() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            Statevector(1, data=np.array([0.0, 0.0])).normalize()
