"""Concurrent access to the PlanCache: one build per fingerprint, ever.

The job service and sharded sweeps hammer ``plan_for`` from many threads at
once; these tests pin the coalescing contract documented on
:meth:`~repro.compiler.plan_cache.PlanCache.plan_for` — concurrent callers
for one fingerprint elect a single builder, everyone else waits and counts
as a hit, and the counters stay consistent under arbitrary interleavings
(``misses`` counts *builds*, ``hits + misses == calls``).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.compiler.plan_cache as plan_cache_module
from repro.algorithms.bell import build_bell_program, build_ghz_program
from repro.compiler.plan_cache import PlanCache, program_fingerprint

THREADS = 16
ROUNDS = 25


def _programs(count):
    """``count`` distinct programs (distinct fingerprints)."""
    builders = [build_bell_program] + [
        (lambda n=n: build_ghz_program(n)) for n in range(2, count + 1)
    ]
    programs = [build() for build in builders[:count]]
    assert len({program_fingerprint(p) for p in programs}) == count
    return programs


class _CountingBuilder:
    """Wrap ``build_execution_plan`` with a per-fingerprint build counter."""

    def __init__(self, real):
        self.real = real
        self.builds: "dict[str, int]" = {}
        self.concurrent = 0
        self.max_concurrent = 0
        self._lock = threading.Lock()

    def __call__(self, program):
        fingerprint = program_fingerprint(program)
        with self._lock:
            self.builds[fingerprint] = self.builds.get(fingerprint, 0) + 1
            self.concurrent += 1
            self.max_concurrent = max(self.max_concurrent, self.concurrent)
        try:
            return self.real(program)
        finally:
            with self._lock:
                self.concurrent -= 1


@pytest.fixture()
def counting_builder(monkeypatch):
    counter = _CountingBuilder(plan_cache_module.build_execution_plan)
    monkeypatch.setattr(plan_cache_module, "build_execution_plan", counter)
    return counter


def _hammer(cache, programs, threads=THREADS, rounds=ROUNDS):
    """Every thread requests every program ``rounds`` times; returns plans."""
    barrier = threading.Barrier(threads)

    def worker(worker_index):
        barrier.wait()  # maximise the simultaneous-first-call race
        plans = []
        for round_index in range(rounds):
            for offset in range(len(programs)):
                # Each thread walks the programs in a different order.
                program = programs[(worker_index + round_index + offset) % len(programs)]
                plans.append((program_fingerprint(program), cache.plan_for(program)))
        return plans

    with ThreadPoolExecutor(max_workers=threads) as pool:
        results = list(pool.map(worker, range(threads)))
    return [pair for result in results for pair in result]


class TestConcurrentPlanFor:
    def test_each_fingerprint_builds_exactly_once(self, counting_builder):
        programs = _programs(4)
        cache = PlanCache(max_entries=16)
        pairs = _hammer(cache, programs)
        assert all(count == 1 for count in counting_builder.builds.values())
        assert len(counting_builder.builds) == len(programs)
        assert cache.misses == len(programs)
        assert cache.hits + cache.misses == len(pairs)

    def test_waiters_receive_the_builders_plan_object(self, counting_builder):
        programs = _programs(3)
        cache = PlanCache(max_entries=16)
        pairs = _hammer(cache, programs)
        by_fingerprint = {}
        for fingerprint, plan in pairs:
            by_fingerprint.setdefault(fingerprint, set()).add(id(plan))
        # One build ⇒ one plan object per fingerprint, shared by everyone.
        assert all(len(ids) == 1 for ids in by_fingerprint.values())

    def test_no_two_builds_run_concurrently_for_one_program(self, counting_builder):
        cache = PlanCache(max_entries=16)
        program = build_bell_program()
        _hammer(cache, [program])
        assert counting_builder.builds == {program_fingerprint(program): 1}
        assert counting_builder.max_concurrent == 1

    def test_distinct_programs_may_build_in_parallel(self, counting_builder):
        # The lock guards bookkeeping, not compilation: builders for
        # *different* fingerprints must not serialise each other.  (Max
        # observed concurrency is scheduling-dependent, so only the
        # exactly-once invariant is asserted; this documents intent.)
        programs = _programs(6)
        cache = PlanCache(max_entries=16)
        _hammer(cache, programs, threads=6, rounds=2)
        assert all(count == 1 for count in counting_builder.builds.values())

    def test_eviction_hammer_stays_consistent(self, counting_builder):
        # A capacity smaller than the working set forces rebuild-after-evict
        # races; the invariants that must survive are bounded size,
        # hits + misses == calls, and misses == builds (not double-builds
        # of a *live* entry).
        programs = _programs(5)
        cache = PlanCache(max_entries=2)
        pairs = _hammer(cache, programs, threads=8, rounds=10)
        assert len(cache._entries) <= 2
        assert cache.hits + cache.misses == len(pairs)
        assert cache.misses == sum(counting_builder.builds.values())
        # Every program was evicted and rebuilt at least once overall...
        assert all(count >= 1 for count in counting_builder.builds.values())

    def test_failed_build_releases_the_inflight_marker(self, monkeypatch):
        cache = PlanCache(max_entries=4)
        program = build_bell_program()
        real = plan_cache_module.build_execution_plan
        calls = {"n": 0}

        def flaky(prog):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected compile failure")
            return real(prog)

        monkeypatch.setattr(plan_cache_module, "build_execution_plan", flaky)
        with pytest.raises(RuntimeError, match="injected compile failure"):
            cache.plan_for(program)
        assert not cache._inflight  # marker cleaned up
        plan = cache.plan_for(program)  # a fresh builder is elected
        assert plan is cache.plan_for(program)
        assert cache.misses == 1 and cache.hits == 1
