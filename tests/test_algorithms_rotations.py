"""Tests for the controlled-rotation decompositions of Figure 3 / Table 1."""

import math

import numpy as np
import pytest

from repro.algorithms.rotations import (
    VARIANTS,
    build_controlled_rz_variant,
    controlled_phase_matrix,
    controlled_rz_matrix,
    variant_is_correct,
    variant_matrix,
)
from repro.sim import gates


class TestReferenceMatrices:
    def test_controlled_rz_structure(self):
        matrix = controlled_rz_matrix(0.8)
        # Control is qubit 0 (the low bit), so the control-0 subspace is the
        # even basis indices, which the gate must leave untouched.
        assert np.allclose(matrix[np.ix_([0, 2], [0, 2])], np.eye(2))
        assert np.allclose(matrix[np.ix_([1, 3], [1, 3])], gates.rz(0.8))
        assert gates.is_unitary(matrix)

    def test_controlled_phase_structure(self):
        theta = 0.8
        matrix = controlled_phase_matrix(theta)
        expected = np.diag([1, 1, 1, np.exp(1j * theta)])
        assert np.allclose(matrix, expected)


class TestTable1Variants:
    @pytest.mark.parametrize("angle", [math.pi / 2, math.pi / 8, 1.1, -0.7])
    def test_both_correct_variants_agree(self, angle):
        a = variant_matrix(angle, "drop_a")
        c = variant_matrix(angle, "drop_c")
        assert np.allclose(a, c, atol=1e-10)

    @pytest.mark.parametrize("angle", [math.pi / 2, math.pi / 8, 1.1])
    @pytest.mark.parametrize("variant", ["drop_a", "drop_c"])
    def test_correct_variants_implement_controlled_rotation(self, angle, variant):
        assert variant_is_correct(angle, variant)

    @pytest.mark.parametrize("angle", [math.pi / 2, math.pi / 8, 1.1])
    def test_flipped_variant_is_wrong(self, angle):
        assert not variant_is_correct(angle, "flipped")

    def test_flipped_variant_rotates_in_opposite_direction(self):
        angle = math.pi / 4
        flipped = variant_matrix(angle, "flipped")
        correct_for_negative_angle = variant_matrix(-angle, "drop_a")
        # The flipped decomposition is the correct decomposition of the
        # *negated* angle, up to the trailing D rotation on the control.
        d_difference = np.kron(np.eye(2), gates.rz(angle))
        assert np.allclose(flipped, d_difference @ correct_for_negative_angle, atol=1e-10)

    def test_correct_variants_equal_controlled_phase_up_to_global_phase(self):
        angle = 0.9
        candidate = variant_matrix(angle, "drop_a")
        assert gates.gates_equal_up_to_global_phase(candidate, controlled_phase_matrix(angle))

    def test_flipped_differs_from_controlled_phase(self):
        angle = 0.9
        candidate = variant_matrix(angle, "flipped")
        assert not gates.gates_equal_up_to_global_phase(candidate, controlled_phase_matrix(angle))

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_controlled_rz_variant(0.5, "drop_b")

    def test_variant_list(self):
        assert set(VARIANTS) == {"drop_a", "drop_c", "flipped"}

    def test_zero_angle_everything_is_identity(self):
        for variant in VARIANTS:
            assert np.allclose(variant_matrix(0.0, variant), np.eye(4), atol=1e-12)
