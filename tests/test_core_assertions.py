"""Tests for the four assertion evaluators."""

import pytest

from repro.core import (
    ClassicalAssertion,
    EntanglementAssertion,
    InsufficientEnsembleError,
    ProductStateAssertion,
    SuperpositionAssertion,
)
from repro.sim import MeasurementEnsemble


def ensemble(num_bits, samples, label=""):
    return MeasurementEnsemble(num_bits=num_bits, samples=list(samples), label=label)


class TestClassicalAssertion:
    def test_passes_when_all_samples_match(self):
        assertion = ClassicalAssertion(expected_value=5, num_bits=4)
        outcome = assertion.evaluate(ensemble(4, [5] * 16))
        assert outcome.passed
        assert outcome.p_value == 1.0
        assert outcome.assertion_type == "classical"

    def test_fails_on_any_mismatch(self):
        assertion = ClassicalAssertion(expected_value=5, num_bits=4)
        outcome = assertion.evaluate(ensemble(4, [5] * 15 + [7]))
        assert not outcome.passed
        assert outcome.p_value == 0.0
        assert "expected the classical value 5" in outcome.message

    def test_width_mismatch_rejected(self):
        assertion = ClassicalAssertion(expected_value=1, num_bits=2)
        with pytest.raises(ValueError):
            assertion.evaluate(ensemble(3, [1]))

    def test_empty_ensemble_rejected(self):
        assertion = ClassicalAssertion(expected_value=1, num_bits=2)
        with pytest.raises(InsufficientEnsembleError):
            assertion.evaluate(ensemble(2, []))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ClassicalAssertion(expected_value=4, num_bits=2)
        with pytest.raises(ValueError):
            ClassicalAssertion(expected_value=0, num_bits=0)
        with pytest.raises(ValueError):
            ClassicalAssertion(expected_value=0, num_bits=1, significance=1.5)


class TestSuperpositionAssertion:
    def test_passes_on_roughly_uniform_data(self):
        assertion = SuperpositionAssertion(num_bits=2)
        outcome = assertion.evaluate(ensemble(2, [0, 1, 2, 3] * 8))
        assert outcome.passed
        assert outcome.p_value == pytest.approx(1.0)

    def test_fails_on_concentrated_data(self):
        assertion = SuperpositionAssertion(num_bits=3)
        outcome = assertion.evaluate(ensemble(3, [0] * 64))
        assert not outcome.passed
        assert outcome.p_value < 1e-6

    def test_support_restriction(self):
        assertion = SuperpositionAssertion(num_bits=2, support=[0, 3])
        outcome = assertion.evaluate(ensemble(2, [0, 3] * 10))
        assert outcome.passed
        full_assertion = SuperpositionAssertion(num_bits=2)
        assert not full_assertion.evaluate(ensemble(2, [0, 3] * 10)).passed

    def test_needs_at_least_two_samples(self):
        assertion = SuperpositionAssertion(num_bits=1)
        with pytest.raises(InsufficientEnsembleError):
            assertion.evaluate(ensemble(1, [0]))

    def test_support_validation(self):
        with pytest.raises(ValueError):
            SuperpositionAssertion(num_bits=2, support=[0, 9])


class TestEntanglementAssertion:
    def test_correlated_measurements_pass(self):
        assertion = EntanglementAssertion()
        a = ensemble(1, [0, 0, 0, 0, 1, 1, 1, 1] * 2)
        b = ensemble(1, [0, 0, 0, 0, 1, 1, 1, 1] * 2)
        outcome = assertion.evaluate(a, b)
        assert outcome.passed
        assert outcome.p_value == pytest.approx(0.000465, abs=5e-5)
        assert outcome.details["cramers_v"] == pytest.approx(1.0)

    def test_independent_measurements_fail(self):
        assertion = EntanglementAssertion()
        a = ensemble(1, [0, 1] * 8)
        b = ensemble(1, [0, 0, 1, 1] * 4)
        outcome = assertion.evaluate(a, b)
        assert not outcome.passed
        assert outcome.p_value > 0.05

    def test_constant_variable_fails(self):
        """A variable stuck at one value can never witness entanglement."""
        assertion = EntanglementAssertion()
        outcome = assertion.evaluate(ensemble(1, [0] * 16), ensemble(1, [0, 1] * 8))
        assert not outcome.passed
        assert outcome.p_value == 1.0

    def test_mismatched_lengths_rejected(self):
        assertion = EntanglementAssertion()
        with pytest.raises(ValueError):
            assertion.evaluate(ensemble(1, [0, 1]), ensemble(1, [0]))

    def test_too_small_ensemble_rejected(self):
        assertion = EntanglementAssertion()
        with pytest.raises(InsufficientEnsembleError):
            assertion.evaluate(ensemble(1, [0]), ensemble(1, [0]))


class TestProductStateAssertion:
    def test_independent_measurements_pass(self):
        assertion = ProductStateAssertion()
        a = ensemble(1, [0, 1] * 8)
        b = ensemble(1, [0, 0, 1, 1] * 4)
        assert assertion.evaluate(a, b).passed

    def test_constant_register_passes_with_p_one(self):
        """The Section 4.5 case: the uncomputed register always reads 0."""
        assertion = ProductStateAssertion()
        outcome = assertion.evaluate(ensemble(4, [0] * 16), ensemble(1, [0, 1] * 8))
        assert outcome.passed
        assert outcome.p_value == 1.0

    def test_correlated_measurements_fail(self):
        assertion = ProductStateAssertion()
        a = ensemble(1, [0] * 8 + [1] * 8)
        b = ensemble(2, [3] * 8 + [1] * 8)
        outcome = assertion.evaluate(a, b)
        assert not outcome.passed
        assert outcome.p_value < 0.01
        assert "still correlated" in outcome.message

    def test_outcome_str_renders(self):
        assertion = ProductStateAssertion(label="cleanup")
        outcome = assertion.evaluate(ensemble(1, [0] * 8), ensemble(1, [0, 1] * 4))
        text = str(outcome)
        assert "PASS" in text and "product" in text
