"""Property tests: the bit-packed tableau against the unpacked reference.

The packed ``_Tableau`` (big-int columns + uint64 packed rows) must be
observationally identical to the reference ``_UnpackedTableau`` on random
Clifford circuits at every width class the packing cares about: below one
machine word (3, 17), exactly one word (64), just past a word boundary (65)
and multi-word (130).  Identity is checked through every readout surface:
``deterministic_outcome`` per qubit, the exact sparse
``tableau_outcome_distribution`` (with and without a support cap), and
seeded collapse-walk sample streams that consume the rng identically.
"""

import numpy as np
import pytest

from repro.lang import Program
from repro.sim import StabilizerBackend
from repro.sim.stabilizer_backend import (
    _Tableau,
    _UnpackedTableau,
    tableau_outcome_distribution,
)

SEED = 20190622
WIDTHS = [3, 17, 64, 65, 130]

_NAMES_1Q = ("h", "s", "sdg", "x", "y", "z")
_NAMES_2Q = ("cx", "cz", "swap")


def _random_ops(num_qubits: int, count: int, rng: np.random.Generator):
    """A random op word in the ``apply_ops`` format (slots == qubit ids)."""
    ops = []
    for _ in range(count):
        if num_qubits < 2 or rng.random() < 0.6:
            ops.append(
                (_NAMES_1Q[rng.integers(len(_NAMES_1Q))], int(rng.integers(num_qubits)))
            )
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            ops.append((_NAMES_2Q[rng.integers(len(_NAMES_2Q))], int(a), int(b)))
    return ops


def _pair(num_qubits: int, gate_count: int, seed: int):
    """Packed and unpacked tableaus walked through one random circuit."""
    rng = np.random.default_rng(seed)
    ops = _random_ops(num_qubits, gate_count, rng)
    qubits = list(range(num_qubits))
    packed = _Tableau(num_qubits)
    unpacked = _UnpackedTableau(num_qubits)
    packed.apply_ops(ops, qubits)
    unpacked.apply_ops(ops, qubits)
    return packed, unpacked


def _collapse_stream(tableau, qubits, shots: int, seed: int) -> list[int]:
    """Seeded measurement stream via the collapse walk; rng use is identical
    for any two observationally equal tableaus."""
    rng = np.random.default_rng(seed)
    stream = []
    for _ in range(shots):
        branch = tableau.copy()
        value = 0
        for position, q in enumerate(qubits):
            outcome = branch.deterministic_outcome(q)
            if outcome is None:
                outcome = int(rng.random() < 0.5)
                branch.collapse(q, outcome)
            value |= outcome << position
        stream.append(value)
    return stream


@pytest.mark.parametrize("num_qubits", WIDTHS)
def test_deterministic_outcomes_match(num_qubits):
    for trial in range(3):
        packed, unpacked = _pair(num_qubits, 4 * num_qubits, SEED + trial)
        for q in range(num_qubits):
            assert packed.deterministic_outcome(q) == unpacked.deterministic_outcome(q)


@pytest.mark.parametrize("num_qubits", WIDTHS)
def test_outcome_distributions_match(num_qubits):
    rng = np.random.default_rng(SEED)
    for trial in range(3):
        packed, unpacked = _pair(num_qubits, 4 * num_qubits, SEED + 100 + trial)
        # Random marginals stay bounded by probing few qubits at a time.
        probe = sorted(rng.choice(num_qubits, size=min(6, num_qubits), replace=False))
        probe = [int(q) for q in probe]
        packed_dist = tableau_outcome_distribution(packed, probe)
        unpacked_dist = tableau_outcome_distribution(unpacked, probe)
        assert packed_dist is not None and unpacked_dist is not None
        assert set(packed_dist) == set(unpacked_dist)
        for value, probability in packed_dist.items():
            assert unpacked_dist[value] == pytest.approx(probability)


@pytest.mark.parametrize("num_qubits", WIDTHS)
def test_support_cap_agrees(num_qubits):
    """Both engines hit (or clear) a support cap identically."""
    packed, unpacked = _pair(num_qubits, 4 * num_qubits, SEED + 200)
    probe = list(range(min(8, num_qubits)))
    for cap in (1, 4, 1 << len(probe)):
        packed_dist = tableau_outcome_distribution(packed, probe, max_support=cap)
        unpacked_dist = tableau_outcome_distribution(unpacked, probe, max_support=cap)
        assert (packed_dist is None) == (unpacked_dist is None)
        if packed_dist is not None:
            assert set(packed_dist) == set(unpacked_dist)


@pytest.mark.parametrize("num_qubits", WIDTHS)
def test_seeded_sample_streams_match(num_qubits):
    """The seeded collapse walk consumes the rng identically on both engines."""
    packed, unpacked = _pair(num_qubits, 4 * num_qubits, SEED + 300)
    rng = np.random.default_rng(SEED + 300)
    probe = sorted(rng.choice(num_qubits, size=min(10, num_qubits), replace=False))
    probe = [int(q) for q in probe]
    assert _collapse_stream(packed, probe, 32, SEED) == _collapse_stream(
        unpacked, probe, 32, SEED
    )


@pytest.mark.parametrize("num_qubits", WIDTHS)
def test_backend_sample_stream_matches_reference_marginal(num_qubits):
    """``StabilizerBackend.sample`` draws the stream the reference predicts.

    The backend samples with one ``rng.choice`` over its dense marginal; the
    same seeded draw over the *unpacked* engine's marginal must therefore be
    byte-identical — the backend-level spelling of packed/unpacked identity.
    """
    rng = np.random.default_rng(SEED + 400)
    ops = _random_ops(num_qubits, 4 * num_qubits, rng)
    qubits = list(range(num_qubits))

    program = Program("noop")
    program.qreg("q", num_qubits)
    backend = StabilizerBackend()
    backend.initialize(num_qubits)
    backend._require_tableau().apply_ops(ops, qubits)

    unpacked = _UnpackedTableau(num_qubits)
    unpacked.apply_ops(ops, qubits)

    probe = sorted(rng.choice(num_qubits, size=min(6, num_qubits), replace=False))
    probe = [int(q) for q in probe]
    distribution = tableau_outcome_distribution(unpacked, probe)
    probs = np.zeros(1 << len(probe))
    for value, probability in distribution.items():
        probs[value] = probability
    probs = probs / probs.sum()

    expected = np.random.default_rng(SEED).choice(len(probs), size=64, p=probs)
    observed = backend.sample(probe, shots=64, rng=SEED)
    assert list(observed) == list(expected)
