"""Tests for the H2 Hamiltonian construction and its exact spectrum."""

import numpy as np
import pytest

from repro.chemistry import (
    ASSIGNMENT_LEVELS,
    ELECTRON_ASSIGNMENTS,
    WHITFIELD_INTEGRALS,
    assignment_expectation_energy,
    assignment_to_basis_state,
    build_h2_fermion_hamiltonian,
    build_h2_qubit_hamiltonian,
    dominant_eigenstate_energy,
    exact_eigenvalues,
    two_electron_eigenvalues,
)


class TestIntegrals:
    def test_integral_symmetry(self):
        integrals = WHITFIELD_INTEGRALS
        assert integrals.v(0, 0, 1, 1) == integrals.v(1, 1, 0, 0)
        assert integrals.v(0, 1, 0, 1) == integrals.v(1, 0, 1, 0)
        assert integrals.v(0, 1, 1, 1) == 0.0

    def test_one_body_values(self):
        assert WHITFIELD_INTEGRALS.h(0, 0) == pytest.approx(-1.252477)
        assert WHITFIELD_INTEGRALS.h(1, 1) == pytest.approx(-0.475934)
        assert WHITFIELD_INTEGRALS.h(0, 1) == 0.0

    def test_nuclear_repulsion(self):
        assert WHITFIELD_INTEGRALS.nuclear_repulsion == pytest.approx(1 / 1.401)


class TestHamiltonianConstruction:
    def test_fermionic_hamiltonian_is_hermitian(self):
        assert build_h2_fermion_hamiltonian().is_hermitian()

    def test_qubit_hamiltonian_is_hermitian_with_15_terms(self, h2_hamiltonian):
        simplified = h2_hamiltonian.simplify()
        assert simplified.is_hermitian()
        assert len(simplified) == 15

    def test_jordan_wigner_matches_fermionic_matrix(self, h2_hamiltonian):
        fermionic = build_h2_fermion_hamiltonian()
        dense = fermionic.to_matrix(4) + np.eye(16) * WHITFIELD_INTEGRALS.nuclear_repulsion
        assert np.allclose(h2_hamiltonian.to_matrix(), dense, atol=1e-9)

    def test_hamiltonian_conserves_particle_number(self, h2_hamiltonian):
        matrix = h2_hamiltonian.to_matrix()
        for bra in range(16):
            for ket in range(16):
                if bin(bra).count("1") != bin(ket).count("1"):
                    assert abs(matrix[bra, ket]) < 1e-10

    def test_ground_state_energy_matches_fci_reference(self, h2_hamiltonian):
        """The FCI/STO-3G total energy of H2 near equilibrium is about -1.137 Ha."""
        assert exact_eigenvalues(h2_hamiltonian)[0] == pytest.approx(-1.1373, abs=2e-3)

    def test_hartree_fock_energy(self, h2_hamiltonian):
        """<1100|H|1100> is the restricted Hartree-Fock energy, about -1.117 Ha."""
        hf = assignment_expectation_energy(h2_hamiltonian, ELECTRON_ASSIGNMENTS["G"])
        assert hf == pytest.approx(-1.1167, abs=2e-3)

    def test_excluding_nuclear_repulsion_shifts_spectrum(self):
        with_nuclear = build_h2_qubit_hamiltonian(include_nuclear_repulsion=True)
        without = build_h2_qubit_hamiltonian(include_nuclear_repulsion=False)
        shift = WHITFIELD_INTEGRALS.nuclear_repulsion
        assert np.allclose(
            exact_eigenvalues(with_nuclear), exact_eigenvalues(without) + shift, atol=1e-9
        )


class TestTable5Structure:
    def test_assignment_encoding(self):
        assert assignment_to_basis_state((1, 1, 0, 0)) == 3
        assert assignment_to_basis_state((0, 0, 1, 1)) == 12
        with pytest.raises(ValueError):
            assignment_to_basis_state((1, 2, 0, 0))

    def test_six_assignments_map_to_four_levels(self):
        assert len(ELECTRON_ASSIGNMENTS) == 6
        assert set(ASSIGNMENT_LEVELS.values()) == {"G", "E1", "E2", "E3"}

    def test_two_electron_sector_has_four_distinct_levels(self, h2_hamiltonian):
        eigenvalues = two_electron_eigenvalues(h2_hamiltonian)
        distinct = np.unique(np.round(eigenvalues, 6))
        assert len(eigenvalues) == 6
        assert len(distinct) == 4

    def test_paired_assignments_have_equal_expectation_energy(self, h2_hamiltonian):
        """Section 5.2.2 symmetry check: both E1 (and both E2) assignments agree."""
        e1a = assignment_expectation_energy(h2_hamiltonian, ELECTRON_ASSIGNMENTS["E1a"])
        e1b = assignment_expectation_energy(h2_hamiltonian, ELECTRON_ASSIGNMENTS["E1b"])
        e2a = assignment_expectation_energy(h2_hamiltonian, ELECTRON_ASSIGNMENTS["E2a"])
        e2b = assignment_expectation_energy(h2_hamiltonian, ELECTRON_ASSIGNMENTS["E2b"])
        assert e1a == pytest.approx(e1b, abs=1e-9)
        assert e2a == pytest.approx(e2b, abs=1e-9)

    def test_level_ordering_matches_table5(self, h2_hamiltonian):
        energies = {
            level: assignment_expectation_energy(h2_hamiltonian, occupation)
            for level, occupation in [
                ("G", ELECTRON_ASSIGNMENTS["G"]),
                ("E1", ELECTRON_ASSIGNMENTS["E1a"]),
                ("E2", ELECTRON_ASSIGNMENTS["E2a"]),
                ("E3", ELECTRON_ASSIGNMENTS["E3"]),
            ]
        }
        assert energies["G"] < energies["E1"] < energies["E2"] < energies["E3"]

    def test_e1_assignments_are_exact_eigenstates(self, h2_hamiltonian):
        for name in ("E1a", "E1b"):
            _, overlap = dominant_eigenstate_energy(
                h2_hamiltonian, ELECTRON_ASSIGNMENTS[name]
            )
            assert overlap == pytest.approx(1.0)

    def test_ground_assignment_strongly_overlaps_ground_state(self, h2_hamiltonian):
        energy, overlap = dominant_eigenstate_energy(
            h2_hamiltonian, ELECTRON_ASSIGNMENTS["G"]
        )
        assert overlap > 0.95
        assert energy == pytest.approx(exact_eigenvalues(h2_hamiltonian)[0])
