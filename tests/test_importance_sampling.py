"""Importance-sampled trajectory noise and correlated two-qubit channels.

Covers the rare-event sampling layer end to end: the biased
``PauliChannelSampler`` (likelihood ratios, unbiased-path byte identity),
likelihood-ratio weights flowing through the trajectory backends into
``MeasurementEnsemble`` (weighted frequencies, Kish effective sample size,
SE denominators), the self-normalized estimator staying unbiased at rare
``p``, and the ``two_qubit_depolarizing`` channel agreeing between the
sampled trajectory path and the exact density path.
"""

import numpy as np
import pytest

from repro.compiler import BreakpointExecutor, build_execution_plan
from repro.core.statistics import category_standard_errors
from repro.lang import Program
from repro.sim.measurement import MeasurementEnsemble
from repro.sim.noise import (
    NoiseModel,
    PauliChannelSampler,
    depolarizing,
    two_qubit_depolarizing,
)

SEED = 20190622


# ----------------------------------------------------------------------
# Sampler-level properties
# ----------------------------------------------------------------------


class TestBiasedSampler:
    def test_unbiased_sampler_has_no_ratios(self):
        sampler = PauliChannelSampler(depolarizing(0.01).pauli_decomposition())
        assert not sampler.is_biased
        assert sampler.ratios is None

    def test_biased_sampler_ratios_are_likelihood_ratios(self):
        p = 1e-4
        boost = 0.05
        mixture = depolarizing(p).pauli_decomposition()
        sampler = PauliChannelSampler(mixture, importance_boost=boost)
        assert sampler.is_biased
        probabilities = np.asarray(mixture.probabilities)
        sampling = probabilities * sampler.ratios**-1
        # The biased distribution is normalised and pushes exactly `boost`
        # mass onto the error components.
        assert sampling.sum() == pytest.approx(1.0)
        assert sampling[1:].sum() == pytest.approx(boost)

    def test_boost_ignored_when_error_mass_already_large(self):
        # depolarizing(0.3) has error mass 0.3 > boost 0.05: no reweighting.
        sampler = PauliChannelSampler(
            depolarizing(0.3).pauli_decomposition(), importance_boost=0.05
        )
        assert not sampler.is_biased

    def test_boost_validation(self):
        mixture = depolarizing(0.01).pauli_decomposition()
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="importance_boost"):
                PauliChannelSampler(mixture, importance_boost=bad)

    def test_biased_draws_match_biased_distribution(self):
        p = 1e-3
        boost = 0.25
        sampler = PauliChannelSampler(
            depolarizing(p).pauli_decomposition(), importance_boost=boost
        )
        rng = np.random.default_rng(SEED)
        positions = sampler.sample_positions(rng.random(200_000))
        error_fraction = float((positions != 0).mean())
        assert error_fraction == pytest.approx(boost, rel=0.05)

    def test_unbiased_sample_stream_unchanged_by_refactor(self):
        """The unbiased path must keep its historical byte-for-byte stream."""
        mixture = depolarizing(0.2).pauli_decomposition()
        sampler = PauliChannelSampler(mixture)
        uniforms = np.random.default_rng(SEED).random(64)
        expected = np.minimum(
            np.searchsorted(np.cumsum(mixture.probabilities), uniforms, side="right"),
            len(mixture.probabilities) - 1,
        )
        assert list(sampler.sample_positions(uniforms)) == list(expected)

    def test_noise_model_boost_validation(self):
        with pytest.raises(ValueError):
            NoiseModel.from_channels([depolarizing(0.01)], importance_boost=1.0)
        model = NoiseModel.from_channels([depolarizing(0.01)], importance_boost=0.1)
        assert model.importance_boost == 0.1


# ----------------------------------------------------------------------
# Weighted ensembles and statistics
# ----------------------------------------------------------------------


class TestWeightedEnsembles:
    def test_weighted_frequencies_and_kish_size(self):
        ensemble = MeasurementEnsemble(
            samples=[0, 0, 1, 1], num_bits=1, weights=[1.0, 1.0, 0.5, 0.5]
        )
        freqs = ensemble.weighted_frequencies()
        # Weighted counts: outcome 1 carries 0.5 + 0.5 of the 3.0 total, so
        # the self-normalised estimate of P(1) is 1/3.
        assert freqs[1] == pytest.approx(1.0)
        assert freqs[1] / freqs.sum() == pytest.approx(1.0 / 3.0)
        # Kish: (sum w)^2 / sum w^2 = 9 / 2.5 = 3.6
        assert ensemble.effective_sample_size() == pytest.approx(3.6)

    def test_unweighted_ensemble_degrades_to_plain_frequencies(self):
        ensemble = MeasurementEnsemble(samples=[0, 1, 1, 1], num_bits=1)
        assert list(ensemble.weighted_frequencies()) == list(ensemble.frequencies())
        assert ensemble.effective_sample_size() == 4.0

    def test_category_standard_errors_with_effective_size(self):
        counts = np.array([30.0, 10.0])
        plain = category_standard_errors(counts)
        shrunk = category_standard_errors(counts, effective_sample_size=10.0)
        assert np.all(shrunk >= plain)
        with pytest.raises(ValueError):
            category_standard_errors(counts, effective_sample_size=0.0)


# ----------------------------------------------------------------------
# End-to-end: rare-noise estimation through the executor
# ----------------------------------------------------------------------


def _probe_program(gates: int = 30) -> Program:
    program = Program("rare_noise_probe")
    register = program.qreg("q", 1)
    program.prep_z(register[0], 0)
    for _ in range(gates // 2):
        program.x(register[0])
        program.x(register[0])
    program.assert_classical([register[0]], 0, label="still |0>")
    program.measure(register, label="m")
    return program


def _estimate(noise, ensemble_size: int, seed: int, backend: str) -> float:
    plan = build_execution_plan(_probe_program())
    executor = BreakpointExecutor(
        ensemble_size=ensemble_size, rng=seed, backend=backend, noise=noise
    )
    ensemble = executor.run_plan(plan)[0].joint
    weights = ensemble.weights or [1.0] * len(ensemble.samples)
    return sum(w for w, s in zip(weights, ensemble.samples) if s != 0) / sum(weights)


class TestEndToEnd:
    @pytest.mark.parametrize("backend", ["stabilizer", "statevector"])
    def test_weights_reach_the_ensemble(self, backend):
        noise = NoiseModel.from_channels([depolarizing(1e-4)], importance_boost=0.1)
        plan = build_execution_plan(_probe_program())
        executor = BreakpointExecutor(
            ensemble_size=16, rng=SEED, backend=backend, noise=noise
        )
        ensemble = executor.run_plan(plan)[0].joint
        assert ensemble.weights is not None
        assert len(ensemble.weights) == 16
        assert ensemble.effective_sample_size() <= 16.0

    def test_plain_noise_keeps_unweighted_ensembles(self):
        noise = NoiseModel.from_channels([depolarizing(1e-4)])
        plan = build_execution_plan(_probe_program())
        executor = BreakpointExecutor(
            ensemble_size=16, rng=SEED, backend="stabilizer", noise=noise
        )
        assert executor.run_plan(plan)[0].joint.weights is None

    def test_importance_estimator_is_unbiased_and_tighter(self):
        p = 1e-3
        gates = 30
        plain_noise = NoiseModel.from_channels([depolarizing(p)])
        boosted_noise = NoiseModel.from_channels(
            [depolarizing(p)], importance_boost=2.0 / gates
        )
        plain = [
            _estimate(plain_noise, 128, SEED + rep, "stabilizer") for rep in range(20)
        ]
        boosted = [
            _estimate(boosted_noise, 128, SEED + rep, "stabilizer")
            for rep in range(20)
        ]
        # Same target: the two means agree within a few plain-sampling SEs.
        plain_se = np.std(plain, ddof=1) / np.sqrt(len(plain))
        assert abs(np.mean(boosted) - np.mean(plain)) <= 4.0 * plain_se + 1e-3
        # And the boosted estimator is strictly tighter across repetitions.
        assert np.std(boosted, ddof=1) < np.std(plain, ddof=1)


# ----------------------------------------------------------------------
# Correlated two-qubit channels
# ----------------------------------------------------------------------


def _bell_program() -> Program:
    program = Program("bell_2q_noise")
    register = program.qreg("q", 2)
    program.prep_z(register[0], 0)
    program.prep_z(register[1], 0)
    program.h(register[0])
    program.cnot(register[0], register[1])
    program.assert_classical([register[0], register[1]], 0, label="probe")
    program.measure(register, label="m")
    return program


class TestTwoQubitChannels:
    def test_channel_shape_and_mass(self):
        channel = two_qubit_depolarizing(0.15)
        assert channel.num_qubits == 2
        mixture = channel.pauli_decomposition()
        assert len(mixture.probabilities) == 16
        assert sum(mixture.probabilities) == pytest.approx(1.0)
        assert mixture.probabilities[0] == pytest.approx(0.85)

    def test_noise_model_accepts_two_qubit_rejects_wider(self):
        model = NoiseModel.from_channels([two_qubit_depolarizing(0.1)])
        assert model.gate_channels[0].num_qubits == 2

    @pytest.mark.parametrize("backend", ["stabilizer", "statevector"])
    def test_trajectory_matches_density_distribution(self, backend):
        """Sampled 2q-channel marginals converge to the exact density ones."""
        p = 0.3
        noise = NoiseModel.from_channels([two_qubit_depolarizing(p)])
        plan = build_execution_plan(_bell_program())

        exact = BreakpointExecutor(
            ensemble_size=4096, rng=SEED, backend="density", noise=noise
        )
        exact_dist = exact.run_plan(plan)[0].joint.empirical_distribution()
        # The density engine samples from the *exact* noisy distribution, so
        # its large-ensemble empirical distribution is the reference.
        sampled = BreakpointExecutor(
            ensemble_size=4096, rng=SEED, backend=backend, noise=noise
        )
        sampled_dist = sampled.run_plan(plan)[0].joint.empirical_distribution()
        np.testing.assert_allclose(sampled_dist, exact_dist, atol=0.03)

    def test_single_qubit_streams_unchanged_by_two_qubit_support(self):
        """1q-only noise draws are byte-identical with 2q support present."""
        noise = NoiseModel.from_channels([depolarizing(0.05)])
        plan = build_execution_plan(_bell_program())
        first = BreakpointExecutor(
            ensemble_size=64, rng=SEED, backend="stabilizer", noise=noise
        ).run_plan(plan)
        second = BreakpointExecutor(
            ensemble_size=64, rng=SEED, backend="stabilizer", noise=noise
        ).run_plan(plan)
        for a, b in zip(first, second):
            assert list(a.joint.samples) == list(b.joint.samples)
