"""Integration tests pinning the paper's headline numbers and claims.

Each test corresponds to a specific quantitative or structural claim made in
the paper; EXPERIMENTS.md cross-references these tests and the benchmarks.
"""

import numpy as np
import pytest

from repro.algorithms.bell import bell_contingency_probabilities, build_bell_program
from repro.algorithms.modular import build_cmodmul_test_harness
from repro.algorithms.qft import build_qft_test_harness
from repro.algorithms.shor import build_shor_program, run_shor, shor_joint_distribution, table2_rows
from repro.algorithms.grover import run_grover
from repro.chemistry import (
    ELECTRON_ASSIGNMENTS,
    assignment_expectation_energy,
    two_electron_eigenvalues,
)
from repro.core import check_program


class TestFigure1BellState:
    def test_bell_measurements_follow_the_contingency_table(self):
        program = build_bell_program(with_assertion=False).without_assertions()
        state = program.simulate()
        joint = state.probabilities([0, 1]).reshape(2, 2)
        # Rows: m0, columns: m1 — the table of Section 4.4.
        assert np.allclose(joint, bell_contingency_probabilities().T)

    def test_entanglement_assertion_pvalue_at_16_samples(self):
        """Perfectly correlated 16-sample ensemble -> p ~= 0.0005."""
        report = check_program(build_bell_program(), ensemble_size=16, rng=1)
        assert report.passed
        assert report.records[0].p_value == pytest.approx(0.000465, abs=5e-5)


class TestSection43AdderClaim:
    def test_buggy_adder_postcondition_pvalue_is_exactly_zero(self, rng):
        from repro.algorithms.arithmetic import build_cadd_test_harness

        report = check_program(
            build_cadd_test_harness(angle_sign=-1.0), ensemble_size=16, rng=rng
        )
        assert report.records[1].p_value == 0.0


class TestSection44And45MultiplierClaims:
    def test_correct_harness_pvalues(self):
        report = check_program(build_cmodmul_test_harness(), ensemble_size=16, rng=0)
        by_label = {r.outcome.assertion_type: r.p_value for r in report.records}
        # "the first assertion returns p-value = 0.0005 for an ensemble size of 16"
        assert by_label["entangled"] == pytest.approx(5e-4, abs=5e-4)
        # "the assert_product statement ... returns p-value = 1.0"
        assert by_label["product"] == 1.0

    def test_wrong_inverse_product_pvalue_small(self):
        report = check_program(
            build_cmodmul_test_harness(inverse_multiplier=12), ensemble_size=16, rng=0
        )
        product = next(r for r in report.records if r.outcome.assertion_type == "product")
        # "the assertion returns p-value = 0.0005 ... indicating the two
        # registers are still incorrectly entangled"
        assert product.p_value < 0.01
        assert not product.passed

    def test_misrouted_control_not_significant(self):
        report = check_program(
            build_cmodmul_test_harness(control_bug_duplicate=True), ensemble_size=16, rng=0
        )
        entangled = next(
            r for r in report.records if r.outcome.assertion_type == "entangled"
        )
        # "the first assertion returns p-value = 0.121 ... the control register
        # value is not correctly toggling the operation" — the exact value
        # depends on the sampled ensemble; the claim is that it is NOT
        # significant, so the entanglement assertion fails.
        assert entangled.p_value > 0.05
        assert not entangled.passed


class TestTables2And3:
    def test_table2_reproduction(self):
        rows = table2_rows(15, 7, 4)
        assert [(r["a"], r["a_inv"]) for r in rows] == [(7, 13), (4, 4), (1, 1), (1, 1)]

    def test_table3_reproduction(self):
        circuit = build_shor_program(inverse_overrides={0: 12})
        table = shor_joint_distribution(circuit)
        # Ancilla row 0: outputs 0, 2, 4, 6 each with probability 1/8.
        assert np.allclose(table[0, [0, 2, 4, 6]], 1 / 8)
        assert np.allclose(table[0, [1, 3, 5, 7]], 0.0)
        # Non-zero ancilla rows {2, 7, 8, 13}: uniform 1/64.
        for row in (2, 7, 8, 13):
            assert np.allclose(table[row], 1 / 64)
        # Everything else is empty, and the whole table is normalised.
        assert table.sum() == pytest.approx(1.0)
        assert np.count_nonzero(table.sum(axis=1) > 1e-9) == 5

    def test_shor_outputs_0_2_4_6(self):
        """Section 4.6: 'the algorithm should return 0, 2, 4, or 6, each with
        equal probability, from measuring the upper register'."""
        result = run_shor(rng=2, shots=256)
        counts = result["counts"]
        assert set(counts) == {0, 2, 4, 6}
        for value in (0, 2, 4, 6):
            assert counts[value] == pytest.approx(64, abs=30)
        assert result["factors"] == (3, 5)


class TestSection51Grover:
    def test_search_succeeds_with_both_coding_styles(self):
        for style in ("scaffold", "projectq"):
            result = run_grover(degree=3, target=3, style=style, rng=9)
            assert result["found"], style


class TestSection52Chemistry:
    def test_six_assignments_four_levels(self, h2_hamiltonian):
        energies = sorted(
            round(assignment_expectation_energy(h2_hamiltonian, occupation), 6)
            for occupation in ELECTRON_ASSIGNMENTS.values()
        )
        assert len(set(energies)) == 4

    def test_degeneracy_structure_of_the_spectrum(self, h2_hamiltonian):
        eigenvalues = np.round(two_electron_eigenvalues(h2_hamiltonian), 6)
        values, counts = np.unique(eigenvalues, return_counts=True)
        assert sorted(counts.tolist()) == [1, 1, 1, 3]


class TestFullShorDebuggingWorkflow:
    def test_assertions_localise_the_wrong_inverse_bug(self):
        """The workflow of Section 4: preconditions pass, the garbage-collection
        postconditions fail, pointing at the deallocation/classical inputs."""
        circuit = build_shor_program(inverse_overrides={0: 12})
        report = check_program(circuit.program, ensemble_size=32, rng=6)
        records = {r.name: r for r in report.records}
        assert records["precondition: lower register = 1"].passed
        assert records["precondition: upper register uniform"].passed
        assert not records["postcondition: ancillae returned to 0"].passed
        assert not records["ancillae disentangled from output"].passed
