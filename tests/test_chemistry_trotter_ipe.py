"""Tests for Trotterised evolution and the H2 energy estimators."""

import math

import numpy as np
import pytest
from scipy.linalg import expm

from repro.chemistry import (
    ELECTRON_ASSIGNMENTS,
    H2EnergyEstimator,
    PauliString,
    PauliSum,
    append_evolution,
    append_pauli_evolution,
    append_trotter_step,
    build_h2_qubit_hamiltonian,
    precision_convergence,
    table5_rows,
    trotter_convergence,
)
from repro.lang import Program


class TestPauliEvolution:
    @pytest.mark.parametrize("label", ["Z", "X", "Y", "XX", "YZ", "XYZ", "ZIZ"])
    @pytest.mark.parametrize("angle", [0.3, -1.2])
    def test_single_term_evolution_matches_expm(self, label, angle):
        pauli = PauliString.from_label(label)
        program = Program()
        q = program.qreg("q", len(label))
        append_pauli_evolution(program, pauli, angle, list(q))
        reference = expm(-1j * angle * pauli.to_matrix())
        assert np.allclose(program.unitary(), reference, atol=1e-9)

    def test_identity_term_uncontrolled_is_noop(self):
        program = Program()
        q = program.qreg("q", 2)
        append_pauli_evolution(program, PauliString.identity(2), 0.7, list(q))
        assert program.num_gates() == 0

    def test_identity_term_controlled_kicks_phase_back(self):
        program = Program()
        c = program.qreg("c", 1)
        q = program.qreg("q", 1)
        append_pauli_evolution(program, PauliString.identity(1), 0.7, [q[0]], control=c[0])
        matrix = program.unitary()
        # The control qubit acquires exp(-i*0.7) on its |1> branch.
        assert matrix[1, 1] == pytest.approx(np.exp(-0.7j))

    def test_controlled_evolution_identity_when_control_zero(self):
        pauli = PauliString.from_label("XY")
        program = Program()
        c = program.qreg("c", 1)
        q = program.qreg("q", 2)
        append_pauli_evolution(program, pauli, 0.9, list(q), control=c[0])
        state = program.simulate()
        assert state.amplitude(0) == pytest.approx(1.0)

    def test_controlled_evolution_matches_block_matrix(self):
        pauli = PauliString.from_label("ZX")
        angle = 0.53
        program = Program()
        c = program.qreg("c", 1)
        q = program.qreg("q", 2)
        append_pauli_evolution(program, pauli, angle, list(q), control=c[0])
        matrix = program.unitary()
        # Control = qubit 0: odd rows/columns form the exp(-i angle P) block.
        block = matrix[np.ix_([1, 3, 5, 7], [1, 3, 5, 7])]
        assert np.allclose(block, expm(-1j * angle * pauli.to_matrix()), atol=1e-9)

    def test_size_mismatch_rejected(self):
        program = Program()
        q = program.qreg("q", 1)
        with pytest.raises(ValueError):
            append_pauli_evolution(program, PauliString.from_label("XX"), 0.1, list(q))


class TestTrotterisation:
    def _two_term_hamiltonian(self):
        return PauliSum(
            [PauliString.from_label("XI", 0.3), PauliString.from_label("ZZ", -0.7)]
        )

    def test_commuting_hamiltonian_is_exact(self):
        hamiltonian = PauliSum(
            [PauliString.from_label("ZI", 0.4), PauliString.from_label("ZZ", 0.2)]
        )
        program = Program()
        q = program.qreg("q", 2)
        append_evolution(program, hamiltonian, 1.3, list(q), trotter_steps=1)
        reference = expm(-1.3j * hamiltonian.to_matrix())
        assert np.allclose(program.unitary(), reference, atol=1e-9)

    def test_error_decreases_with_more_steps(self):
        hamiltonian = self._two_term_hamiltonian()
        reference = expm(-1j * hamiltonian.to_matrix())
        errors = []
        for steps in (1, 4, 16):
            program = Program()
            q = program.qreg("q", 2)
            append_evolution(program, hamiltonian, 1.0, list(q), trotter_steps=steps)
            errors.append(np.linalg.norm(program.unitary() - reference))
        assert errors[1] < errors[0]
        assert errors[2] < errors[1]

    def test_complex_coefficients_rejected(self):
        bad = PauliSum([PauliString.from_label("X", 1.0j)])
        program = Program()
        q = program.qreg("q", 1)
        with pytest.raises(ValueError):
            append_trotter_step(program, bad, 1.0, list(q))

    def test_invalid_step_count(self):
        program = Program()
        q = program.qreg("q", 1)
        with pytest.raises(ValueError):
            append_evolution(program, PauliSum([PauliString.from_label("X")]), 1.0, list(q), 0)

    def test_h2_controlled_evolution_phase_matches_eigenvalue(self, h2_hamiltonian):
        """Controlled-U on an eigenstate kicks exp(-i E t) onto the control."""
        time = 0.7
        occupation = ELECTRON_ASSIGNMENTS["E1a"]  # an exact eigenstate
        program = Program()
        c = program.qreg("c", 1)
        q = program.qreg("q", 4)
        program.h(c[0])
        for index, bit in enumerate(occupation):
            if bit:
                program.x(q[index])
        append_evolution(
            program, h2_hamiltonian, time, list(q), trotter_steps=64, control=c[0]
        )
        state = program.simulate()
        # Phase difference between the |0> and |1> branches of the control.
        c_index = program.qubit_index(c[0])
        basis = sum(bit << (program.qubit_index(q[i]) ) for i, bit in enumerate(occupation))
        amp0 = state.amplitude(basis)
        amp1 = state.amplitude(basis | (1 << c_index))
        measured_phase = np.angle(amp1 / amp0)
        expected_energy = -0.5325  # triplet level (see test_chemistry_h2)
        expected_phase = (-expected_energy * time + np.pi) % (2 * np.pi) - np.pi
        assert measured_phase == pytest.approx(expected_phase, abs=0.05)


class TestEnergyEstimators:
    @pytest.fixture(scope="class")
    def estimator(self):
        return H2EnergyEstimator(num_bits=5, trotter_steps_per_unit=2)

    def test_ipe_ground_state_energy(self, estimator):
        estimate = estimator.estimate_ipe(ELECTRON_ASSIGNMENTS["G"])
        assert estimate.energy == pytest.approx(-1.137, abs=0.15)
        assert estimate.method == "ipe"

    def test_ipe_triplet_energy(self, estimator):
        estimate = estimator.estimate_ipe(ELECTRON_ASSIGNMENTS["E1a"])
        assert estimate.energy == pytest.approx(-0.5325, abs=0.15)

    def test_qpe_peak_probability_reasonable(self, estimator):
        estimate = estimator.estimate_qpe(ELECTRON_ASSIGNMENTS["E1b"])
        assert estimate.details["peak_probability"] > 0.4
        assert estimate.details["peak_energy"] == pytest.approx(-0.5325, abs=0.2)

    def test_table5_rows_reproduce_structure(self):
        rows = table5_rows(H2EnergyEstimator(num_bits=5, trotter_steps_per_unit=2))
        assert len(rows) == 6
        by_level = {}
        for row in rows:
            by_level.setdefault(row["level"], []).append(row["qpe_energy"])
        # Paired assignments give the same energy.
        assert by_level["E1"][0] == pytest.approx(by_level["E1"][1], abs=1e-9)
        assert by_level["E2"][0] == pytest.approx(by_level["E2"][1], abs=1e-9)
        # Level ordering matches Table 5.
        assert by_level["G"][0] < by_level["E1"][0] < by_level["E2"][0] < by_level["E3"][0]

    def test_phase_to_energy_wrapping(self, estimator):
        assert estimator.phase_to_energy(0.25) == pytest.approx(-math.pi / 2)
        assert estimator.phase_to_energy(0.75) == pytest.approx(+math.pi / 2)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            H2EnergyEstimator(time_step=0.0)

    def test_trotter_convergence_rows(self):
        rows = trotter_convergence(steps_list=(1, 2), num_bits=4)
        assert [row["trotter_steps_per_unit"] for row in rows] == [1, 2]

    def test_precision_convergence_rounds_consistently(self):
        """Section 5.2.3: the high-precision run rounds to the low-precision answer."""
        rows = precision_convergence(bits_list=(3, 5), trotter_steps_per_unit=2)
        coarse = rows[0]["phase"]
        fine = rows[1]["phase"]
        assert abs(fine - coarse) <= 1 / (1 << 3)
