"""Equivalence and work-bound tests for the incremental checkpointed executor.

The incremental engine must be a pure optimisation: under a fixed seed its
measurement ensembles and chi-square verdicts match the legacy per-prefix
path on every bug scenario, while performing O(total_gates) gate
applications instead of O(total_gates x k).
"""

import numpy as np
import pytest

from repro.bugs import BUG_SCENARIOS
from repro.compiler import BreakpointExecutor, build_execution_plan, split_at_assertions
from repro.core import DEFAULT_SIGNIFICANCE, build_evaluator
from repro.lang import Program
from repro.sim import StatevectorBackend
from repro.lang.program import run_instructions

SEED = 20190622


def _legacy_measurements(program, ensemble_size, seed):
    """The paper's literal scheme: every breakpoint prefix re-simulated."""
    executor = BreakpointExecutor(ensemble_size=ensemble_size, rng=seed)
    measurements = [executor.run(bp) for bp in split_at_assertions(program)]
    return measurements, executor.gates_applied


def _incremental_measurements(program, ensemble_size, seed):
    """One checkpointed walk of the shared-prefix execution plan."""
    executor = BreakpointExecutor(ensemble_size=ensemble_size, rng=seed)
    measurements = executor.run_plan(build_execution_plan(program))
    return measurements, executor.gates_applied


def _verdicts(measurements):
    verdicts = []
    for item in measurements:
        evaluator = build_evaluator(item.breakpoint.assertion, DEFAULT_SIGNIFICANCE)
        if item.group_b is None:
            outcome = evaluator.evaluate(item.group_a)
        else:
            outcome = evaluator.evaluate(item.group_a, item.group_b)
        verdicts.append(outcome.passed)
    return verdicts


class TestSeededEquivalence:
    """Incremental ensembles/verdicts match the legacy path on every scenario."""

    @pytest.mark.parametrize("name", sorted(BUG_SCENARIOS))
    @pytest.mark.parametrize("variant", ["correct", "buggy"])
    def test_ensembles_and_verdicts_match_legacy(self, name, variant):
        scenario = BUG_SCENARIOS[name]
        build = scenario.build_correct if variant == "correct" else scenario.build_buggy
        program = build()
        legacy, legacy_gates = _legacy_measurements(program, 16, SEED)
        incremental, incremental_gates = _incremental_measurements(program, 16, SEED)

        assert len(legacy) == len(incremental) > 0
        for left, right in zip(legacy, incremental):
            assert left.breakpoint.index == right.breakpoint.index
            assert left.breakpoint.name == right.breakpoint.name
            assert left.joint.samples == right.joint.samples
            assert left.group_a.samples == right.group_a.samples
            if left.group_b is None:
                assert right.group_b is None
            else:
                assert left.group_b.samples == right.group_b.samples
        assert _verdicts(legacy) == _verdicts(incremental)
        assert incremental_gates <= legacy_gates

    def test_checker_report_matches_manual_plan_walk(self):
        """StatisticalAssertionChecker.run() rides the incremental engine."""
        from repro.core import check_program

        scenario = BUG_SCENARIOS["flipped_rotation_angles"]
        program = scenario.build_buggy()
        report = check_program(program, ensemble_size=16, rng=SEED)
        incremental, _ = _incremental_measurements(program, 16, SEED)
        assert [record.outcome.passed for record in report.records] == _verdicts(
            incremental
        )


class TestWorkBound:
    """The 'sample' executor performs O(total_gates) gate applications."""

    @staticmethod
    def _chain_program(num_blocks, gates_per_block):
        program = Program(f"chain_{num_blocks}x{gates_per_block}")
        q = program.qreg("q", 2)
        for _ in range(num_blocks):
            for _ in range(gates_per_block):
                program.h(q[0])
                program.cnot(q[0], q[1])
            program.assert_superposition([q[0]], label="block check")
        return program

    def test_incremental_gate_count_is_total_gates(self):
        program = self._chain_program(num_blocks=5, gates_per_block=4)
        plan = build_execution_plan(program)
        _, applied = _incremental_measurements(program, 8, SEED)
        assert applied == plan.total_gates == 40

    def test_legacy_gate_count_is_sum_of_prefixes(self):
        program = self._chain_program(num_blocks=5, gates_per_block=4)
        plan = build_execution_plan(program)
        _, applied = _legacy_measurements(program, 8, SEED)
        assert applied == plan.legacy_gates == sum(
            segment.gates_before for segment in plan.segments
        )
        assert applied == 8 + 16 + 24 + 32 + 40

    def test_incremental_work_independent_of_breakpoint_count(self):
        """Same gate content, k vs 2k assertions: identical incremental work."""
        sparse = self._chain_program(num_blocks=2, gates_per_block=10)
        dense = self._chain_program(num_blocks=10, gates_per_block=2)
        _, sparse_applied = _incremental_measurements(sparse, 8, SEED)
        _, dense_applied = _incremental_measurements(dense, 8, SEED)
        assert sparse_applied == dense_applied == 40

    def test_rerun_mode_unchanged_by_plans(self):
        """'rerun' keeps faithful per-member re-simulation of every prefix."""
        program = self._chain_program(num_blocks=2, gates_per_block=3)
        plan = build_execution_plan(program)
        executor = BreakpointExecutor(ensemble_size=4, rng=SEED, mode="rerun")
        executor.run_plan(plan)
        assert executor.gates_applied == 4 * plan.legacy_gates


class TestSnapshotIsolation:
    def test_sampling_at_a_breakpoint_never_perturbs_the_next(self):
        """Ensembles at breakpoint i+1 are identical whether or not breakpoint i
        was sampled — drawing from the snapshot leaves the walk untouched."""
        program = Program("isolation")
        q = program.qreg("q", 2)
        program.h(q[0])
        program.assert_superposition([q[0]], label="bp0")
        program.cnot(q[0], q[1])
        program.assert_entangled([q[0]], [q[1]], label="bp1")

        plan = build_execution_plan(program)
        executor = BreakpointExecutor(ensemble_size=512, rng=SEED)
        measurements = executor.run_plan(plan)

        # Breakpoint 1 sees the exact Bell statistics even though breakpoint 0
        # drew 512 samples first: the two groups stay perfectly correlated.
        assert measurements[1].group_a.samples == measurements[1].group_b.samples

    def test_backend_state_after_walk_matches_direct_simulation(self):
        """After walking all segments the backend holds the same state a
        single uninterrupted simulation produces (collapse-and-restore at
        each breakpoint leaves no trace)."""
        program = Program("walk")
        q = program.qreg("q", 3)
        program.h(q[0])
        program.assert_superposition([q[0]], label="bp0")
        program.cnot(q[0], q[1])
        program.assert_entangled([q[0]], [q[1]], label="bp1")
        program.cnot(q[1], q[2])

        plan = build_execution_plan(program)
        rng = np.random.default_rng(SEED)
        backend = StatevectorBackend(program.num_qubits)
        for segment in plan.segments:
            run_instructions(program, segment.instructions, backend, rng=rng)
            token = backend.snapshot()
            backend.measure(
                [program.qubit_index(qb) for qb in segment.assertion.qubits()], rng=rng
            )
            backend.restore(token)

        # The walk covered gates up to the last breakpoint only.
        prefix = plan.prefix_program(plan.num_breakpoints - 1)
        expected = prefix.simulate()
        assert np.allclose(backend.to_statevector().data, expected.data)


class TestPlanStructure:
    def test_segments_partition_the_prefixes(self):
        scenario = BUG_SCENARIOS["control_routing"]
        program = scenario.build_correct()
        plan = build_execution_plan(program)
        breakpoints = split_at_assertions(program)
        assert plan.num_breakpoints == len(breakpoints)
        for segment, breakpoint_program in zip(plan.segments, breakpoints):
            assert segment.gates_before == breakpoint_program.gates_before
            assert segment.assertion is breakpoint_program.assertion
        assert plan.total_gates == breakpoints[-1].gates_before
        assert plan.legacy_gates == sum(bp.gates_before for bp in breakpoints)

    def test_split_at_assertions_dropped_dead_parameter(self):
        """The unused include_trailing flag is gone."""
        program = Program()
        q = program.qreg("q", 1)
        program.h(q[0])
        program.assert_superposition([q[0]])
        with pytest.raises(TypeError):
            split_at_assertions(program, include_trailing=True)

    def test_group_labels_assigned_at_construction(self):
        """_slice_groups passes labels through extract_bits, not mutation."""
        program = Program("labels")
        a = program.qreg("a", 1)
        b = program.qreg("b", 1)
        program.h(a[0])
        program.cnot(a[0], b[0])
        program.assert_entangled(a, b, label="pair")
        executor = BreakpointExecutor(ensemble_size=8, rng=SEED)
        (measurements,) = executor.run_plan(build_execution_plan(program))
        assert measurements.joint.label == "pair"
        assert measurements.group_a.label == "group_a"
        assert measurements.group_b.label == "group_b"
