"""Tests for the Beauregard modular arithmetic and the Listing 4 harness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.modular import (
    append_cmodmul,
    append_cmult_inplace,
    append_phi_add_const_mod,
    build_cmodmul_test_harness,
    modular_inverse,
)
from repro.algorithms.qft import append_iqft, append_qft
from repro.core import check_program
from repro.lang import Program


class TestModularInverse:
    def test_known_values(self):
        assert modular_inverse(7, 15) == 13
        assert modular_inverse(4, 15) == 4
        assert modular_inverse(13, 15) == 7
        assert modular_inverse(1, 15) == 1

    def test_inverse_property(self):
        for modulus in (7, 15, 21):
            for value in range(1, modulus):
                if np.gcd(value, modulus) == 1:
                    assert (value * modular_inverse(value, modulus)) % modulus == 1

    def test_non_coprime_rejected(self):
        with pytest.raises(ValueError):
            modular_inverse(5, 15)


def _run_modular_add(n_bits, modulus, constant, b_value, controls_value=None):
    """Simulate one modular addition and return the resulting b value."""
    program = Program()
    controls = None
    if controls_value is not None:
        controls = program.qreg("ctrl", 1)
        if controls_value:
            program.x(controls[0])
    b = program.qreg("b", n_bits + 1)
    ancilla = program.qreg("anc", 1)
    program.prepare_int(b, b_value)
    append_qft(program, b)
    append_phi_add_const_mod(
        program, b, constant, modulus, ancilla[0], controls=controls
    )
    append_iqft(program, b)
    state = program.simulate()
    b_indices = [program.qubit_index(q) for q in b]
    ancilla_index = [program.qubit_index(ancilla[0])]
    distribution = state.probabilities(b_indices)
    result = int(np.argmax(distribution))
    assert distribution[result] == pytest.approx(1.0), "modular adder left a superposition"
    assert state.probability_of_outcome(ancilla_index, 0) == pytest.approx(1.0)
    return result


class TestModularAdder:
    def test_exhaustive_small_modulus(self):
        modulus = 7
        for constant in range(modulus):
            for b_value in range(modulus):
                result = _run_modular_add(3, modulus, constant, b_value)
                assert result == (b_value + constant) % modulus

    def test_modulus_15_spot_checks(self):
        for constant, b_value in [(7, 8), (13, 13), (4, 11), (1, 0)]:
            result = _run_modular_add(4, modulus := 15, constant, b_value)
            assert result == (b_value + constant) % modulus

    def test_controlled_version_respects_control(self):
        assert _run_modular_add(3, 7, 5, 4, controls_value=0) == 4
        assert _run_modular_add(3, 7, 5, 4, controls_value=1) == 2

    def test_register_width_validation(self):
        program = Program()
        b = program.qreg("b", 4)
        ancilla = program.qreg("anc", 1)
        with pytest.raises(ValueError):
            append_phi_add_const_mod(program, b, 3, 15, ancilla[0])

    @given(constant=st.integers(0, 14), b_value=st.integers(0, 14))
    @settings(max_examples=20, deadline=None)
    def test_modular_adder_property(self, constant, b_value):
        assert _run_modular_add(4, 15, constant, b_value) == (b_value + constant) % 15


class TestControlledModularMultiplier:
    def _run_cmodmul(self, control_value, x_value, b_value, multiplier, modulus=15):
        program = Program()
        ctrl = program.qreg("ctrl", 1)
        if control_value:
            program.x(ctrl[0])
        x = program.qreg("x", 4)
        b = program.qreg("b", 5)
        ancilla = program.qreg("anc", 1)
        program.prepare_int(x, x_value)
        program.prepare_int(b, b_value)
        append_cmodmul(program, ctrl[0], x, b, multiplier, modulus, ancilla[0])
        state = program.simulate()
        b_indices = [program.qubit_index(q) for q in b]
        return int(np.argmax(state.probabilities(b_indices)))

    def test_multiply_accumulate_when_control_set(self):
        # b <- b + a*x mod N : 7 + 7*6 mod 15 = 4 (the Listing 4 numbers)
        assert self._run_cmodmul(1, 6, 7, 7) == 4

    def test_no_action_when_control_clear(self):
        assert self._run_cmodmul(0, 6, 7, 7) == 7

    def test_second_multiplication_restores_value(self):
        # 4 + 13*6 mod 15 = 7, the inverse step of Listing 4.
        assert self._run_cmodmul(1, 6, 4, 13) == 7

    def test_inplace_multiplier_maps_x_correctly(self):
        for x_value in (1, 3, 6, 11):
            program = Program()
            ctrl = program.qreg("ctrl", 1)
            program.x(ctrl[0])
            x = program.qreg("x", 4)
            b = program.qreg("b", 5)
            ancilla = program.qreg("anc", 1)
            program.prepare_int(x, x_value)
            append_cmult_inplace(program, ctrl[0], x, b, 7, 15, ancilla[0])
            state = program.simulate()
            x_indices = [program.qubit_index(q) for q in x]
            b_indices = [program.qubit_index(q) for q in b]
            assert int(np.argmax(state.probabilities(x_indices))) == (7 * x_value) % 15
            assert state.probability_of_outcome(b_indices, 0) == pytest.approx(1.0)

    def test_inplace_multiplier_identity_when_control_clear(self):
        program = Program()
        ctrl = program.qreg("ctrl", 1)
        x = program.qreg("x", 4)
        b = program.qreg("b", 5)
        ancilla = program.qreg("anc", 1)
        program.prepare_int(x, 9)
        append_cmult_inplace(program, ctrl[0], x, b, 7, 15, ancilla[0])
        state = program.simulate()
        x_indices = [program.qubit_index(q) for q in x]
        assert state.probability_of_outcome(x_indices, 9) == pytest.approx(1.0)


class TestListing4Harness:
    def test_correct_harness_reproduces_paper_pvalues(self):
        """Section 4.4/4.5: entangled p ~= 0.0005, product p = 1.0 at 16 samples."""
        report = check_program(build_cmodmul_test_harness(), ensemble_size=16, rng=0)
        assert report.passed
        by_type = {r.outcome.assertion_type: r.p_value for r in report.records}
        assert by_type["entangled"] == pytest.approx(0.000465, abs=5e-4)
        assert by_type["product"] == 1.0

    def test_wrong_modular_inverse_detected(self):
        """Section 4.5: a_inv = 12 leaves the registers entangled (small p)."""
        report = check_program(
            build_cmodmul_test_harness(inverse_multiplier=12), ensemble_size=16, rng=0
        )
        assert not report.passed
        product_record = next(
            r for r in report.records if r.outcome.assertion_type == "product"
        )
        assert product_record.p_value < 0.05

    def test_control_routing_bug_detected(self):
        """Section 4.4: mis-routed controls make the entanglement assertion fail."""
        report = check_program(
            build_cmodmul_test_harness(control_bug_duplicate=True),
            ensemble_size=16,
            rng=0,
        )
        entangled_record = next(
            r for r in report.records if r.outcome.assertion_type == "entangled"
        )
        assert not entangled_record.passed
        assert entangled_record.p_value > 0.05
