"""Tests for the Pauli-string algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chemistry import PauliString, PauliSum
from repro.sim import Statevector, gates


pauli_labels = st.text(alphabet="IXYZ", min_size=1, max_size=4)


class TestPauliString:
    def test_construction_and_label(self):
        pauli = PauliString.from_label("XZI", coefficient=2.0)
        assert pauli.label() == "XZI"
        assert pauli.num_qubits == 3
        assert pauli.support() == [0, 1]
        assert pauli.weight() == 2

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XQ")

    def test_from_terms_sparse(self):
        pauli = PauliString.from_terms({2: "Y"}, num_qubits=3)
        assert pauli.label() == "IIY"
        with pytest.raises(ValueError):
            PauliString.from_terms({5: "X"}, num_qubits=3)

    def test_identity(self):
        identity = PauliString.identity(3, coefficient=0.5)
        assert identity.is_identity
        assert identity.to_matrix().shape == (8, 8)
        assert np.allclose(identity.to_matrix(), 0.5 * np.eye(8))

    def test_single_qubit_matrices(self):
        assert np.allclose(PauliString.from_label("X").to_matrix(), gates.X)
        assert np.allclose(PauliString.from_label("Y").to_matrix(), gates.Y)
        assert np.allclose(PauliString.from_label("Z").to_matrix(), gates.Z)

    def test_two_qubit_matrix_ordering(self):
        # label "XI": X acts on qubit 0 (low bit).
        matrix = PauliString.from_label("XI").to_matrix()
        assert np.allclose(matrix, np.kron(np.eye(2), gates.X))

    def test_multiplication_phases(self):
        x = PauliString.from_label("X")
        y = PauliString.from_label("Y")
        z = PauliString.from_label("Z")
        assert (x * y).label() == "Z"
        assert (x * y).coefficient == pytest.approx(1j)
        assert (y * x).coefficient == pytest.approx(-1j)
        assert (z * z).label() == "I"

    def test_scalar_multiplication(self):
        pauli = 2.0 * PauliString.from_label("ZZ")
        assert pauli.coefficient == 2.0
        assert (-pauli).coefficient == -2.0

    def test_commutation(self):
        assert PauliString.from_label("XX").commutes_with(PauliString.from_label("YY"))
        assert not PauliString.from_label("XI").commutes_with(PauliString.from_label("ZI"))
        assert PauliString.from_label("XZ").commutes_with(PauliString.from_label("XZ"))

    def test_expectation_on_basis_state(self):
        state = Statevector.from_int(0b01, 2)
        z0 = PauliString.from_label("ZI")
        z1 = PauliString.from_label("IZ")
        assert z0.expectation(state) == pytest.approx(-1.0)
        assert z1.expectation(state) == pytest.approx(+1.0)

    def test_expectation_identity(self):
        state = Statevector.uniform_superposition(2)
        assert PauliString.identity(2, 3.5).expectation(state) == pytest.approx(3.5)

    @given(label_a=pauli_labels, label_b=pauli_labels)
    @settings(max_examples=60, deadline=None)
    def test_product_matches_matrix_product(self, label_a, label_b):
        n = min(len(label_a), len(label_b))
        a = PauliString.from_label(label_a[:n])
        b = PauliString.from_label(label_b[:n])
        product = a * b
        assert np.allclose(product.to_matrix(), a.to_matrix() @ b.to_matrix(), atol=1e-10)


class TestPauliSum:
    def test_simplify_combines_terms(self):
        total = PauliSum(
            [
                PauliString.from_label("XZ", 1.0),
                PauliString.from_label("XZ", 2.0),
                PauliString.from_label("ZZ", 1e-15),
            ]
        )
        simplified = total.simplify()
        assert len(simplified) == 1
        assert simplified.terms[0].coefficient == pytest.approx(3.0)

    def test_addition_and_subtraction(self):
        a = PauliSum([PauliString.from_label("X")])
        b = PauliSum([PauliString.from_label("Z")])
        combined = a + b
        assert len(combined) == 2
        difference = (a + b) - b
        assert len(difference.simplify()) == 1

    def test_scalar_multiplication(self):
        total = 2.0 * PauliSum([PauliString.from_label("Z", 1.5)])
        assert total.terms[0].coefficient == pytest.approx(3.0)

    def test_identity_coefficient(self):
        total = PauliSum(
            [PauliString.identity(2, 0.25), PauliString.from_label("ZZ", 1.0)]
        )
        assert total.identity_coefficient() == pytest.approx(0.25)
        assert len(total.non_identity_terms()) == 1

    def test_matrix_and_eigenvalues(self):
        total = PauliSum([PauliString.from_label("Z", 1.0), PauliString.identity(1, 2.0)])
        assert np.allclose(total.to_matrix(), np.diag([3.0, 1.0]))
        assert np.allclose(total.eigenvalues(), [1.0, 3.0])
        assert total.ground_state_energy() == pytest.approx(1.0)

    def test_expectation(self):
        total = PauliSum([PauliString.from_label("ZZ", 0.5)])
        state = Statevector.from_int(0b01, 2)
        assert total.expectation(state) == pytest.approx(-0.5)

    def test_hermiticity_check(self):
        hermitian = PauliSum([PauliString.from_label("XY", 1.0)])
        assert hermitian.is_hermitian()
        not_hermitian = PauliSum([PauliString.from_label("XY", 1.0j)])
        assert not not_hermitian.is_hermitian()

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError):
            PauliSum([PauliString.from_label("X"), PauliString.from_label("XX")])

    def test_describe(self):
        total = PauliSum([PauliString.from_label("ZZ", -0.5)])
        assert "ZZ" in total.describe()
