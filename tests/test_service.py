"""The job service: queue, result cache, lifecycle, degradation, HTTP.

Fault-injection recovery paths (crash/hang/slow/error and the sharded-sweep
chaos contract) live in ``test_service_faults.py``; this file covers the
sunny-day service semantics and the degradation ladder.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import RunConfig, check_program
from repro.algorithms.bell import build_bell_program, build_ghz_program
from repro.lang.qasm import to_qasm
from repro.service import (
    JobState,
    LocalService,
    PriorityJobQueue,
    ResultCache,
    serve_http,
)
from repro.service.queue import QueueClosed

SEED = 20190622
WAIT = 60.0  # generous terminal-state deadline; loaded CI boxes are slow

CFG = RunConfig(ensemble_size=8, seed=SEED, backoff_base=0.01)


def service(**kwargs):
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("root_seed", SEED)
    return LocalService(**kwargs)


# ---------------------------------------------------------------------------
# PriorityJobQueue
# ---------------------------------------------------------------------------


class TestPriorityJobQueue:
    def test_higher_priority_first_fifo_within(self):
        queue = PriorityJobQueue()
        queue.put("low-a", priority=0)
        queue.put("high", priority=5)
        queue.put("low-b", priority=0)
        assert [queue.get(0.1) for _ in range(3)] == ["high", "low-a", "low-b"]

    def test_get_timeout_returns_none(self):
        queue = PriorityJobQueue()
        start = time.monotonic()
        assert queue.get(timeout=0.05) is None
        assert time.monotonic() - start < 5.0

    def test_close_refuses_put_and_unblocks_get(self):
        queue = PriorityJobQueue()
        got = []
        waiter = threading.Thread(target=lambda: got.append(queue.get(10.0)))
        waiter.start()
        queue.close()
        waiter.join(5.0)
        assert not waiter.is_alive() and got == [None]
        with pytest.raises(QueueClosed):
            queue.put("x")

    def test_drain_returns_scheduling_order(self):
        queue = PriorityJobQueue()
        queue.put("b", priority=1)
        queue.put("a", priority=3)
        queue.put("c", priority=1)
        assert queue.drain() == ["a", "b", "c"]
        assert len(queue) == 0

    def test_len(self):
        queue = PriorityJobQueue()
        assert len(queue) == 0
        queue.put("x")
        assert len(queue) == 1


# ---------------------------------------------------------------------------
# ResultCache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_key_stable_across_gate_spelling(self):
        import numpy as np

        from repro.lang.program import Program

        def build(spelling):
            program = Program("spell")
            q = program.qreg("q", 1)
            program.h(q[0])
            if spelling == "s":
                program.s(q[0])
            else:
                program.rz(q[0], np.pi / 2)
            program.assert_superposition([q[0]], label="sup")
            return program

        key_s = ResultCache.key_for(build("s"), CFG)
        key_rz = ResultCache.key_for(build("rz"), CFG)
        assert key_s == key_rz

    def test_key_differs_on_config(self):
        program = build_bell_program()
        assert ResultCache.key_for(program, CFG) != ResultCache.key_for(
            program, CFG.replace(seed=SEED + 1)
        )
        assert ResultCache.key_for(program, CFG) != ResultCache.key_for(
            program, CFG.replace(ensemble_size=16)
        )

    def test_lru_eviction_and_counters(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", "1")
        cache.put("b", "2")
        assert cache.get("a") == "1"  # refresh a
        cache.put("c", "3")  # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == "1" and cache.get("c") == "3"
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["hits"] == 3 and stats["misses"] == 1

    def test_thread_hammer_consistent(self):
        cache = ResultCache(max_entries=8)
        errors = []

        def hammer(worker):
            try:
                for i in range(200):
                    key = f"k{(worker * 7 + i) % 16}"
                    if cache.get(key) is None:
                        cache.put(key, f"v-{key}")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        assert len(cache) <= 8
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 200


# ---------------------------------------------------------------------------
# Job lifecycle
# ---------------------------------------------------------------------------


class TestJobLifecycle:
    def test_submit_returns_immediately_and_done_report_matches_direct(self):
        with service() as svc:
            job_id = svc.submit(build_bell_program(), CFG)
            job = svc.wait(job_id, timeout=WAIT)
            assert job.state == JobState.DONE
            assert job.attempts == 1 and job.failure_chain == []
            expected = check_program(build_bell_program(), CFG)
            assert job.report.to_json() == expected.to_json()

    def test_qasm_submission(self):
        with service() as svc:
            job = svc.wait(
                svc.submit(to_qasm(build_bell_program()), CFG), timeout=WAIT
            )
            assert job.state == JobState.DONE
            assert job.report.num_breakpoints == 1

    def test_wire_payload_submission(self):
        payload = json.dumps(
            {
                "program": to_qasm(build_bell_program()),
                "config": CFG.to_dict(),
                "priority": 2,
            }
        )
        with service() as svc:
            job = svc.wait(svc.submit_payload(payload), timeout=WAIT)
            assert job.priority == 2 and job.state == JobState.DONE

    def test_unknown_job_id_raises(self):
        with service() as svc:
            with pytest.raises(KeyError):
                svc.job("job-999999")

    def test_bad_program_type_raises_at_submit(self):
        with service() as svc:
            with pytest.raises(TypeError):
                svc.submit(12345, CFG)

    def test_bad_config_raises_at_submit(self):
        with service() as svc:
            with pytest.raises(ValueError):
                svc.submit(build_bell_program(), {"ensemble_sise": 8})

    def test_instance_backend_rejected_at_submit(self):
        from repro.sim.backend import StatevectorBackend

        with service() as svc:
            with pytest.raises(TypeError):
                svc.submit(
                    build_bell_program(),
                    CFG.replace(backend=StatevectorBackend()),
                )

    def test_submit_after_close_raises(self):
        svc = service()
        svc.close()
        with pytest.raises(RuntimeError):
            svc.submit(build_bell_program(), CFG)

    def test_wait_timeout_raises_timeout_error(self):
        # Pool fully down: the job can never finish, so the *wait* times out
        # (distinct from the job's own TIMEOUT state).
        with service(max_workers=0) as svc:
            job_id = svc.submit(build_bell_program(), CFG)
            with pytest.raises(TimeoutError):
                svc.wait(job_id, timeout=0.1)
            assert svc.job(job_id).state == JobState.QUEUED

    def test_wait_all_and_jobs_order(self):
        with service() as svc:
            ids = [
                svc.submit(build_bell_program(), CFG.replace(seed=SEED + i))
                for i in range(3)
            ]
            jobs = svc.wait_all(ids, timeout=WAIT)
            assert [job.state for job in jobs] == [JobState.DONE] * 3
            assert [job.id for job in svc.jobs()] == ids

    def test_job_to_dict_is_json_native(self):
        with service() as svc:
            job = svc.wait(svc.submit(build_bell_program(), CFG), timeout=WAIT)
            payload = json.loads(json.dumps(job.to_dict()))
            assert payload["state"] == "DONE"
            assert payload["terminal"] is True
            assert payload["report"]["records"]


class TestSeedDiscipline:
    def test_unseeded_jobs_get_scheduling_independent_seeds(self):
        # Two services with the same root seed assign the same per-job
        # seeds by submission index — results depend on submission order,
        # never on worker scheduling.
        with service(max_workers=1) as first, service(max_workers=2) as second:
            unseeded = CFG.replace(seed=None)
            ids_a = [first.submit(build_bell_program(), unseeded) for _ in range(3)]
            ids_b = [second.submit(build_bell_program(), unseeded) for _ in range(3)]
            jobs_a = first.wait_all(ids_a, timeout=WAIT)
            jobs_b = second.wait_all(ids_b, timeout=WAIT)
        for job_a, job_b in zip(jobs_a, jobs_b):
            assert job_a.config.seed == job_b.config.seed
            assert job_a.report.to_json() == job_b.report.to_json()
        # ...and distinct indices pin distinct streams.
        assert len({job.config.seed for job in jobs_a}) == 3

    def test_explicit_seed_kept(self):
        with service() as svc:
            job = svc.wait(svc.submit(build_bell_program(), CFG), timeout=WAIT)
            assert job.config.seed == SEED


# ---------------------------------------------------------------------------
# Degradation ladder: CACHED and STATIC answer without a worker
# ---------------------------------------------------------------------------


class TestDegradation:
    def test_repeat_job_served_cached_byte_identical(self):
        with service() as svc:
            first = svc.wait(svc.submit(build_bell_program(), CFG), timeout=WAIT)
            second = svc.wait(svc.submit(build_bell_program(), CFG), timeout=WAIT)
            assert first.state == JobState.DONE
            assert second.state == JobState.CACHED
            assert second.attempts == 0
            assert second.report.to_json() == first.report.to_json()
            assert svc.stats()["inline_answers"]["cached"] == 1

    def test_cached_jobs_complete_with_pool_down(self):
        with service() as warm:
            job = warm.wait(warm.submit(build_bell_program(), CFG), timeout=WAIT)
            warm_json = job.report.to_json()
            cache = warm.result_cache
        # A fresh service with zero workers but the warm cache: repeat
        # traffic still completes.
        svc = service(max_workers=0)
        svc.result_cache = cache
        try:
            job_id = svc.submit(build_bell_program(), CFG)
            job = svc.job(job_id)
            assert job.state == JobState.CACHED
            assert job.report.to_json() == warm_json
        finally:
            svc.close()

    def test_static_decidable_answered_inline_with_pool_down(self):
        config = CFG.replace(static_preflight=True)
        with service(max_workers=0) as svc:
            job_id = svc.submit(build_ghz_program(3), config)
            job = svc.job(job_id)
            assert job.state == JobState.STATIC
            assert job.attempts == 0
            assert job.report.num_static == job.report.num_breakpoints == 2
            assert job.report.passed

    def test_static_matches_worker_path_verdicts(self):
        config = CFG.replace(static_preflight=True)
        with service() as svc:
            static_job = svc.job(svc.submit(build_ghz_program(3), config))
            # Big enough ensemble that the sampled verdicts are not a coin
            # flip of the small-sample exact test.
            sampled = check_program(
                build_ghz_program(3), CFG.replace(ensemble_size=64)
            )
        assert static_job.state == JobState.STATIC
        assert [r.passed for r in static_job.report.records] == [
            r.passed for r in sampled.records
        ]

    def test_undecidable_job_goes_to_worker(self):
        # A non-Clifford program is not fully decidable: static_preflight
        # must not short-circuit it, so it runs on a worker.
        import numpy as np

        from repro.lang.program import Program

        program = Program("tgate")
        q = program.qreg("q", 2)
        program.h(q[0])
        program.rz(q[0], np.pi / 4)
        program.cnot(q[0], q[1])
        program.assert_entangled([q[0]], [q[1]], label="ent")
        with service() as svc:
            job = svc.wait(
                svc.submit(program, CFG.replace(static_preflight=True)),
                timeout=WAIT,
            )
            assert job.state == JobState.DONE
            assert job.attempts == 1


# ---------------------------------------------------------------------------
# HTTP front
# ---------------------------------------------------------------------------


def _get_json(url):
    with urllib.request.urlopen(url) as resp:
        return resp.status, json.load(resp)


class TestHTTP:
    @pytest.fixture()
    def server(self):
        with service() as svc, serve_http(svc) as server:
            yield server

    def _submit(self, server, config=CFG, priority=0):
        payload = json.dumps(
            {
                "program": to_qasm(build_bell_program()),
                "config": config.to_dict(),
                "priority": priority,
            }
        ).encode()
        request = urllib.request.Request(
            server.url + "/jobs", data=payload, method="POST"
        )
        with urllib.request.urlopen(request) as resp:
            assert resp.status == 202
            return json.load(resp)["job_id"]

    def test_submit_wait_report_roundtrip(self, server):
        job_id = self._submit(server)
        status, body = _get_json(server.url + f"/jobs/{job_id}/wait?timeout=60")
        assert status == 200 and body["state"] == "DONE"
        status, report = _get_json(server.url + f"/jobs/{job_id}/report")
        assert status == 200
        # The QASM import renames the program (and drops assertion labels),
        # so compare the verdict-bearing payload, not the cosmetic names.
        expected = check_program(build_bell_program(), CFG).to_dict()
        assert report["passed"] == expected["passed"]
        assert len(report["records"]) == len(expected["records"])
        for got, want in zip(report["records"], expected["records"]):
            for key in ("passed", "p_value", "assertion_type", "details"):
                assert got["outcome"][key] == want["outcome"][key]

    def test_status_endpoint(self, server):
        job_id = self._submit(server)
        status, body = _get_json(server.url + f"/jobs/{job_id}")
        assert status == 200
        assert body["id"] == job_id
        assert body["state"] in {"QUEUED", "RUNNING", "DONE"}

    def test_report_conflict_while_in_flight(self):
        with service(max_workers=0) as svc, serve_http(svc) as server:
            job_id = svc.submit(build_bell_program(), CFG)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + f"/jobs/{job_id}/report")
            assert excinfo.value.code == 409
            assert json.load(excinfo.value)["state"] == "QUEUED"

    def test_unknown_job_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/jobs/job-404404")
        assert excinfo.value.code == 404

    def test_bad_payload_400(self, server):
        request = urllib.request.Request(
            server.url + "/jobs", data=b'{"nope": 1}', method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_stats_endpoint(self, server):
        job_id = self._submit(server)
        _get_json(server.url + f"/jobs/{job_id}/wait?timeout=60")
        status, body = _get_json(server.url + "/stats")
        assert status == 200
        assert body["jobs"] >= 1 and "states" in body


# ---------------------------------------------------------------------------
# RunConfig service knobs
# ---------------------------------------------------------------------------


class TestServiceConfigKnobs:
    def test_defaults(self):
        config = RunConfig()
        assert config.job_timeout is None
        assert config.max_retries == 2
        assert config.backoff_base == pytest.approx(0.05)
        assert config.max_seconds is None

    @pytest.mark.parametrize(
        "bad",
        [
            {"job_timeout": 0.0},
            {"job_timeout": -1.0},
            {"max_retries": -1},
            {"backoff_base": -0.5},
            {"max_seconds": 0.0},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            RunConfig(**bad)

    def test_json_round_trip(self):
        config = RunConfig(
            seed=SEED,
            job_timeout=1.5,
            max_retries=4,
            backoff_base=0.25,
            max_seconds=30.0,
        )
        restored = RunConfig.from_json(config.to_json())
        assert restored == config
        assert restored.to_dict() == config.to_dict()


# ---------------------------------------------------------------------------
# run_until_converged wall-clock guard (RunConfig.max_seconds)
# ---------------------------------------------------------------------------


class TestMaxSecondsGuard:
    def _noisy_config(self, **overrides):
        from repro.sim.noise import depolarizing

        base = dict(
            ensemble_size=8,
            seed=SEED,
            backend="trajectory",
            noise=depolarizing(0.02),
            converge=True,
            se_cutoff=1e-6,  # unreachable: never converges on its own
            max_batches=64,
        )
        base.update(overrides)
        return RunConfig(**base)

    def test_expiry_returns_partial_report_flagged_timeout(self):
        report = check_program(build_bell_program(), self._noisy_config(max_seconds=1e-6))
        assert report.convergence
        for row in report.convergence:
            assert row["converged"] is False
            assert row["reason"] == "timeout"
            assert row["batches"] < 64
        # The partial report still carries evaluated assertions.
        assert report.num_breakpoints == 1

    def test_at_least_one_batch_always_runs(self):
        report = check_program(build_bell_program(), self._noisy_config(max_seconds=1e-9))
        assert all(row["batches"] >= 1 for row in report.convergence)
        assert all(row["num_samples"] >= 8 for row in report.convergence)

    def test_unbounded_run_reports_max_batches_reason(self):
        report = check_program(
            build_bell_program(), self._noisy_config(max_batches=2)
        )
        assert [row["reason"] for row in report.convergence] == ["max_batches"]

    def test_converged_run_reports_converged_reason(self):
        report = check_program(
            build_bell_program(),
            self._noisy_config(se_cutoff=0.49, max_seconds=60.0),
        )
        assert all(row["reason"] == "converged" for row in report.convergence)
        assert all(row["converged"] for row in report.convergence)

    def test_reason_survives_report_round_trip(self):
        from repro.core.report import DebugReport

        report = check_program(build_bell_program(), self._noisy_config(max_seconds=1e-6))
        restored = DebugReport.from_json(report.to_json())
        assert restored.convergence == report.convergence


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------


class TestCancel:
    """``LocalService.cancel`` / ``DELETE /jobs/<id>``: withdraw or kill."""

    def test_cancel_queued_job(self):
        with service(max_workers=0) as svc:
            job_id = svc.submit(build_bell_program(), CFG)
            job = svc.cancel(job_id)
            assert job.state == JobState.CANCELLED and job.terminal
            assert job.report is None and job.attempts == 0
            assert svc.wait(job_id, timeout=WAIT).state == JobState.CANCELLED

    def test_cancel_is_idempotent(self):
        with service(max_workers=0) as svc:
            job_id = svc.submit(build_bell_program(), CFG)
            first = svc.cancel(job_id)
            second = svc.cancel(job_id)
            assert first is second and second.state == JobState.CANCELLED

    def test_cancel_after_terminal_is_a_noop(self):
        with service() as svc:
            job_id = svc.submit(build_bell_program(), CFG)
            done = svc.wait(job_id, timeout=WAIT)
            assert done.terminal
            cancelled = svc.cancel(job_id)
            assert cancelled.state == done.state
            assert cancelled.report is not None

    def test_cancel_running_job_kills_worker_without_retry(self):
        with service(fault_spec="hang@0x9", max_workers=1) as svc:
            job_id = svc.submit(build_bell_program(), CFG)
            deadline = time.monotonic() + WAIT
            while svc.job(job_id).state != JobState.RUNNING:
                assert time.monotonic() < deadline, "job never started running"
                time.sleep(0.01)
            svc.cancel(job_id)
            job = svc.wait(job_id, timeout=WAIT)
            assert job.state == JobState.CANCELLED
            assert job.attempts == 1  # cancellation is terminal: no retry
            assert [e["kind"] for e in job.failure_chain] == ["cancelled"]

    def test_cancel_unknown_job_raises(self):
        with service() as svc:
            with pytest.raises(KeyError):
                svc.cancel("job-404404")

    def test_http_delete_cancels_and_is_idempotent(self):
        with service(max_workers=0) as svc, serve_http(svc) as server:
            job_id = svc.submit(build_bell_program(), CFG)
            body = None
            for _ in range(2):
                request = urllib.request.Request(
                    server.url + f"/jobs/{job_id}", method="DELETE"
                )
                with urllib.request.urlopen(request) as resp:
                    assert resp.status == 200
                    body = json.load(resp)
            assert body["state"] == "CANCELLED"
            assert svc.job(job_id).terminal

    def test_http_delete_unknown_job_404(self):
        with service() as svc, serve_http(svc) as server:
            request = urllib.request.Request(
                server.url + "/jobs/job-404404", method="DELETE"
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 404
