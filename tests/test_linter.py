"""Program linter: QLINT rules, corpus self-check, CLI, QASM round trip.

The linter's contract has two halves.  Per-rule: every ill-formed
``LINT_SCENARIOS`` program trips exactly its documented QLINT code.
Corpus-wide: every *clean* program in the repo — bug-catalog correct
variants, Clifford scenario variants (structurally well-formed even when
semantically buggy), and the example scripts' builders — produces zero
diagnostics, so the linter can run as a CI self-check without a suppression
list.
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import LINT_CODES, SEVERITIES, Diagnostic, lint_program
from repro.bugs.injector import BUG_SCENARIOS, LINT_SCENARIOS, STATIC_SIGNALS
from repro.lang import Program
from repro.lang.qasm import QasmError, from_qasm, to_qasm
from repro.workloads.clifford import CLIFFORD_SCENARIOS

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


# ---------------------------------------------------------------------------
# Diagnostic objects and the rule table
# ---------------------------------------------------------------------------


class TestDiagnostic:
    def test_code_table_is_complete(self):
        assert sorted(LINT_CODES) == [f"QLINT00{i}" for i in range(1, 10)]
        for severity, title in LINT_CODES.values():
            assert severity in SEVERITIES
            assert title

    def test_round_trip(self):
        diagnostic = Diagnostic(
            code="QLINT002",
            message="unitary after measurement",
            severity="error",
            instruction_index=4,
            qubits=("q[0]",),
        )
        restored = Diagnostic.from_dict(diagnostic.to_dict())
        assert restored == diagnostic
        assert restored.is_error

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(code="QLINT001", message="m", severity="fatal")

    def test_format_includes_location(self):
        diagnostic = Diagnostic(
            code="QLINT001", message="oops", instruction_index=2, qubits=("q[1]",)
        )
        text = diagnostic.format("prog.qasm")
        assert "prog.qasm" in text and "QLINT001" in text and "q[1]" in text


# ---------------------------------------------------------------------------
# Per-rule units via the injector's lint scenarios
# ---------------------------------------------------------------------------


class TestLintRules:
    @pytest.mark.parametrize("name", sorted(LINT_SCENARIOS))
    def test_scenario_trips_expected_code(self, name):
        scenario = LINT_SCENARIOS[name]
        diagnostics = lint_program(scenario.build())
        codes = [diagnostic.code for diagnostic in diagnostics]
        assert scenario.expected_code in codes, (name, codes)
        for diagnostic in diagnostics:
            expected_severity = LINT_CODES[diagnostic.code][0]
            assert diagnostic.severity == expected_severity

    def test_wholly_unprepped_register_is_implicit_zero(self):
        # Gating a register that never preps ANY qubit is the implicit-|0>
        # convention (used throughout the examples); QLINT001 only fires
        # when the register is partially prepped.
        program = Program("implicit")
        register = program.qreg("q", 2)
        program.h(register[0])
        program.gate("x", [register[1]], controls=[register[0]])
        program.measure(register)
        assert lint_program(program) == []

    def test_prep_consumed_by_assertion_is_not_double_prep(self):
        program = Program("asserted_prep")
        register = program.qreg("q", 1)
        program.prep_z(register[0], 1)
        program.assert_classical(register, 1)
        program.prep_z(register[0], 0)  # prior prep was observed: fine
        program.measure(register)
        assert [d.code for d in lint_program(program)] == []

    def test_repeated_assertion_with_gate_between_is_fine(self):
        program = Program("progress")
        register = program.qreg("q", 1)
        program.prep_z(register[0], 0)
        program.assert_classical(register, 0)
        program.gate("x", register[0])
        program.assert_classical(register, 1)
        program.measure(register)
        assert lint_program(program) == []


# ---------------------------------------------------------------------------
# Corpus self-check (the CI gate)
# ---------------------------------------------------------------------------


def _example_builders():
    """Module-level zero-argument ``build_*`` functions in examples/*.py."""
    for path in sorted(EXAMPLES.glob("*.py")):
        spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        for attr in sorted(vars(module)):
            if not attr.startswith("build_"):
                continue
            builder = getattr(module, attr)
            # Only builders defined *in* the example (imports from the
            # library are covered by their own tests), and only zero-arg
            # ones; unwrap circuit dataclasses that carry a .program.
            if not callable(builder) or builder.__module__ != module.__name__:
                continue

            def _unwrapped(b=builder):
                built = b()
                return getattr(built, "program", built)

            yield f"{path.name}:{attr}", _unwrapped


class TestCorpusSelfCheck:
    @pytest.mark.parametrize("name", sorted(BUG_SCENARIOS))
    def test_bug_catalog_mapping(self, name):
        """Each bug scenario maps to a lint signal or is explicitly exempt."""
        assert name in STATIC_SIGNALS, f"no static-signal entry for {name}"
        scenario = BUG_SCENARIOS[name]
        clean = lint_program(scenario.build_correct())
        assert clean == [], [d.format(name) for d in clean]
        buggy_codes = [d.code for d in lint_program(scenario.build_buggy())]
        expected = STATIC_SIGNALS[name]
        if expected is None:
            assert buggy_codes == [], buggy_codes
        else:
            assert expected in buggy_codes

    @pytest.mark.parametrize("name", sorted(CLIFFORD_SCENARIOS))
    def test_clifford_corpus_lint_clean(self, name):
        scenario = CLIFFORD_SCENARIOS[name]
        for buggy in (False, True):
            for width in (scenario.moderate_qubits, scenario.deep_qubits):
                program = scenario.build(width, buggy)
                diagnostics = lint_program(program)
                assert diagnostics == [], [
                    d.format(program.name) for d in diagnostics
                ]

    def test_example_programs_lint_clean(self):
        builders = dict(_example_builders())
        assert builders, "no example builders discovered"
        for name, builder in builders.items():
            diagnostics = lint_program(builder())
            assert diagnostics == [], (name, [str(d.to_dict()) for d in diagnostics])


# ---------------------------------------------------------------------------
# QASM round trip of assertions (what makes the CLI useful)
# ---------------------------------------------------------------------------


class TestQasmAssertionRoundTrip:
    def test_all_assertion_kinds_survive(self):
        program = Program("rt")
        q = program.qreg("q", 2)
        anc = program.qreg("anc", 1)
        program.prep_z(q[0], 0).prep_z(q[1], 0).prep_z(anc[0], 0)
        program.h(q[0]).gate("x", [q[1]], controls=[q[0]])
        program.assert_classical([anc[0]], 0)
        program.assert_superposition([q[0]])
        program.assert_superposition([q[0]], values=[0, 1])
        program.assert_entangled([q[0], q[1]], [anc[0]])
        program.assert_product([anc[0]], [q[0]])
        program.measure(q)
        restored = from_qasm(to_qasm(program))
        want = [i.describe() for i in program.instructions]
        got = [i.describe() for i in restored.instructions]
        assert [d for d in want if d.startswith("assert")] == [
            d for d in got if d.startswith("assert")
        ]

    def test_malformed_assertion_comment_raises(self):
        text = "\n".join(
            [
                "OPENQASM 2.0;",
                'include "qelib1.inc";',
                "qreg q[1];",
                "// assert_classical(q[0]) == not_a_number",
            ]
        )
        with pytest.raises(QasmError):
            from_qasm(text)

    def test_plain_comments_still_ignored(self):
        text = "\n".join(
            [
                "OPENQASM 2.0;",
                'include "qelib1.inc";',
                "qreg q[1];",
                "// just prose, nothing structured",
                "h q[0]; // trailing comment",
            ]
        )
        program = from_qasm(text)
        assert len(program.instructions) == 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _write_qasm(path: Path, program: Program) -> Path:
    path.write_text(to_qasm(program))
    return path


def _run_cli(*args: str):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestLintCli:
    def test_clean_file_exits_zero(self, tmp_path):
        program = Program("clean")
        register = program.qreg("q", 2)
        program.prep_z(register[0], 0).prep_z(register[1], 0)
        program.h(register[0]).gate("x", [register[1]], controls=[register[0]])
        program.assert_entangled([register[0]], [register[1]])
        program.measure(register)
        path = _write_qasm(tmp_path / "clean.qasm", program)
        result = _run_cli(str(path), "--analyze")
        assert result.returncode == 0, result.stderr
        assert "PROVEN" in result.stdout

    def test_error_diagnostic_exits_one(self, tmp_path):
        program = Program("buggy")
        register = program.qreg("q", 1)
        program.prep_z(register[0], 0)
        program.measure(register)
        program.h(register[0])  # QLINT002, error severity
        path = _write_qasm(tmp_path / "buggy.qasm", program)
        result = _run_cli(str(path))
        assert result.returncode == 1
        assert "QLINT002" in result.stdout

    def test_json_output(self, tmp_path):
        program = Program("warn")
        register = program.qreg("q", 1)
        program.qreg("spare", 1)  # QLINT007, warning severity
        program.prep_z(register[0], 0)
        program.h(register[0])
        program.measure(register)
        path = _write_qasm(tmp_path / "warn.qasm", program)
        result = _run_cli(str(path), "--json")
        assert result.returncode == 0  # warnings alone do not fail the run
        row = json.loads(result.stdout)
        assert row["errors"] == 0
        assert [d["code"] for d in row["diagnostics"]] == ["QLINT007"]

    def test_unparseable_file_exits_one(self, tmp_path):
        path = tmp_path / "broken.qasm"
        path.write_text("OPENQASM 2.0;\nnot a statement\n")
        result = _run_cli(str(path))
        assert result.returncode == 1
        assert "error" in result.stdout


# ---------------------------------------------------------------------------
# Suppression comments (// qlint: disable=QLINT0xx)
# ---------------------------------------------------------------------------


def _double_prep_program() -> Program:
    program = Program("double_prep")
    register = program.qreg("q", 1)
    program.prep_z(register[0], 0)
    program.prep_z(register[0], 0)  # QLINT003
    program.h(register[0])
    program.measure(register)
    return program


class TestSuppressions:
    def test_suppress_lint_drops_matching_diagnostics(self):
        program = _double_prep_program()
        assert [d.code for d in lint_program(program)] == ["QLINT003"]
        program.suppress_lint("QLINT003")
        assert lint_program(program) == []

    def test_no_suppress_reports_everything(self):
        program = _double_prep_program()
        program.suppress_lint("QLINT003")
        assert [d.code for d in lint_program(program, suppress=False)] == [
            "QLINT003"
        ]

    def test_unrelated_codes_still_fire(self):
        program = _double_prep_program()
        program.qreg("spare", 1)  # QLINT007
        program.suppress_lint("QLINT003")
        assert [d.code for d in lint_program(program)] == ["QLINT007"]

    def test_qasm_comment_parses_and_round_trips(self):
        program = _double_prep_program()
        program.suppress_lint("QLINT003")
        text = to_qasm(program)
        assert "// qlint: disable=QLINT003" in text
        imported = from_qasm(text)
        assert imported.lint_suppressions == {"QLINT003"}
        assert lint_program(imported) == []

    def test_qasm_comment_multiple_codes_case_insensitive(self):
        text = to_qasm(_double_prep_program()).replace(
            "OPENQASM 2.0;",
            "OPENQASM 2.0;\n// qlint: disable=qlint003, QLINT007",
        )
        imported = from_qasm(text)
        assert imported.lint_suppressions == {"QLINT003", "QLINT007"}

    def test_malformed_qlint_comment_is_a_parse_error(self):
        text = to_qasm(_double_prep_program()).replace(
            "OPENQASM 2.0;", "OPENQASM 2.0;\n// qlint: disable=bogus"
        )
        with pytest.raises(QasmError, match="qlint"):
            from_qasm(text)

    def test_cli_honors_suppressions(self, tmp_path):
        program = _double_prep_program()
        program.suppress_lint("QLINT003")
        path = _write_qasm(tmp_path / "suppressed.qasm", program)
        result = _run_cli(str(path))
        assert result.returncode == 0
        assert "QLINT003" not in result.stdout
        assert "clean" in result.stdout

    def test_cli_no_suppress_flag_overrides(self, tmp_path):
        program = _double_prep_program()
        program.suppress_lint("QLINT003")
        path = _write_qasm(tmp_path / "suppressed.qasm", program)
        result = _run_cli(str(path), "--no-suppress")
        assert result.returncode == 0  # QLINT003 is warning severity
        assert "QLINT003" in result.stdout

    def test_cli_json_reports_suppressed_codes(self, tmp_path):
        program = _double_prep_program()
        program.suppress_lint("QLINT003")
        path = _write_qasm(tmp_path / "suppressed.qasm", program)
        row = json.loads(_run_cli(str(path), "--json").stdout)
        assert row["suppressed_codes"] == ["QLINT003"]
        assert row["diagnostics"] == []
