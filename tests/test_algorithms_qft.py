"""Tests for the QFT subroutines and the Listing 1 harness."""

import numpy as np
import pytest

from repro.algorithms.qft import (
    append_iqft,
    append_qft,
    build_qft_program,
    build_qft_test_harness,
)
from repro.core import check_program
from repro.lang import Program
from repro.sim import dft_matrix


class TestQftUnitary:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_qft_with_swaps_equals_dft(self, width):
        program = build_qft_program(width, swaps=True)
        assert np.allclose(program.unitary(), dft_matrix(width), atol=1e-10)

    @pytest.mark.parametrize("width", [2, 3])
    def test_qft_without_swaps_is_bit_reversed_dft(self, width):
        program = build_qft_program(width, swaps=False)
        matrix = program.unitary()
        dft = dft_matrix(width)
        # The swap-free QFT equals the DFT with output bits reversed.
        dim = 1 << width
        reversal = np.zeros((dim, dim))
        for value in range(dim):
            reversed_value = int(format(value, f"0{width}b")[::-1], 2)
            reversal[reversed_value, value] = 1.0
        assert np.allclose(reversal @ matrix, dft, atol=1e-10)

    @pytest.mark.parametrize("swaps", [False, True])
    def test_iqft_is_inverse(self, swaps):
        program = Program()
        q = program.qreg("q", 3)
        append_qft(program, q, swaps=swaps)
        append_iqft(program, q, swaps=swaps)
        assert np.allclose(program.unitary(), np.eye(8), atol=1e-10)

    def test_controlled_qft_identity_when_control_zero(self):
        program = Program()
        c = program.qreg("c", 1)
        q = program.qreg("q", 2)
        append_qft(program, q, controls=c)
        append_iqft(program, q, controls=c)
        assert np.allclose(program.unitary(), np.eye(8), atol=1e-10)

    def test_controlled_qft_acts_when_control_one(self):
        controlled = Program()
        c = controlled.qreg("c", 1)
        q = controlled.qreg("q", 2)
        controlled.x(c[0])
        append_qft(controlled, q, controls=c)
        state = controlled.simulate()
        probabilities = state.probabilities([controlled.qubit_index(qb) for qb in q])
        assert np.allclose(probabilities, [0.25] * 4)

    def test_qft_on_uniform_state_returns_zero(self):
        program = Program()
        q = program.qreg("q", 3)
        for qubit in q:
            program.h(qubit)
        append_iqft(program, q)
        state = program.simulate()
        assert state.probability_of_outcome(
            [program.qubit_index(qb) for qb in q], 0
        ) == pytest.approx(1.0)


class TestListing1Harness:
    def test_harness_passes_all_three_assertions(self, rng):
        report = check_program(build_qft_test_harness(), ensemble_size=64, rng=rng)
        assert report.passed, report.summary()
        assert report.num_breakpoints == 3
        types = [r.outcome.assertion_type for r in report.records]
        assert types == ["classical", "superposition", "classical"]

    def test_harness_with_other_values(self, rng):
        report = check_program(
            build_qft_test_harness(width=3, value=6), ensemble_size=64, rng=rng
        )
        assert report.passed

    def test_value_out_of_range(self):
        with pytest.raises(ValueError):
            build_qft_test_harness(width=3, value=9)

    def test_classical_pvalues_are_exactly_one(self, rng):
        report = check_program(build_qft_test_harness(), ensemble_size=32, rng=rng)
        assert report.records[0].p_value == 1.0
        assert report.records[2].p_value == 1.0
