"""Tests for the Program container: gates, composition, inversion, simulation."""

import math

import numpy as np
import pytest

from repro.lang import Program, QuantumRegister
from repro.lang.instructions import GateInstruction
from repro.sim import Statevector, dft_matrix, gates


class TestRegisters:
    def test_qreg_allocates_offsets(self):
        program = Program()
        a = program.qreg("a", 2)
        b = program.qreg("b", 3)
        assert program.num_qubits == 5
        assert program.qubit_index(a[1]) == 1
        assert program.qubit_index(b[0]) == 2

    def test_duplicate_register_name_rejected(self):
        program = Program()
        program.qreg("a", 2)
        with pytest.raises(ValueError):
            program.qreg("a", 1)

    def test_adding_same_register_twice_is_idempotent(self):
        program = Program()
        register = QuantumRegister("a", 2)
        program.add_register(register)
        program.add_register(register)
        assert program.num_qubits == 2

    def test_foreign_register_rejected(self):
        program = Program()
        program.qreg("a", 1)
        foreign = QuantumRegister("b", 1)
        with pytest.raises(KeyError):
            program.x(foreign[0])


class TestGateMethods:
    def test_gate_methods_append_instructions(self):
        program = Program()
        q = program.qreg("q", 3)
        program.h(q[0]).cnot(q[0], q[1]).toffoli(q[0], q[1], q[2])
        program.rz(q[0], 0.4).cphase(q[0], q[1], 0.2).ccphase(q[0], q[1], q[2], 0.1)
        program.swap(q[0], q[1]).cswap(q[0], q[1], q[2])
        assert program.num_gates() == 8
        histogram = program.count_gates()
        assert histogram[("x", 1)] == 1
        assert histogram[("x", 2)] == 1
        assert histogram[("phase", 2)] == 1

    def test_prepare_int_sets_bits(self):
        program = Program()
        q = program.qreg("q", 4)
        program.prepare_int(q, 0b1010)
        state = program.simulate()
        assert state.amplitude(0b1010) == pytest.approx(1.0)

    def test_prepare_int_out_of_range(self):
        program = Program()
        q = program.qreg("q", 2)
        with pytest.raises(ValueError):
            program.prepare_int(q, 4)

    def test_measure_and_barrier_are_recorded(self):
        program = Program()
        q = program.qreg("q", 1)
        program.barrier(comment="start").h(q[0]).measure(q)
        assert len(program) == 3


class TestSimulation:
    def test_bell_state_probabilities(self):
        program = Program()
        q = program.qreg("q", 2)
        program.h(q[0]).cnot(q[0], q[1])
        state = program.simulate()
        assert np.allclose(state.probabilities(), [0.5, 0, 0, 0.5])

    def test_simulation_with_initial_state(self):
        program = Program()
        q = program.qreg("q", 2)
        program.x(q[0])
        initial = Statevector.from_int(2, 2)
        state = program.simulate(initial_state=initial)
        assert state.amplitude(3) == pytest.approx(1.0)

    def test_wrong_initial_state_size(self):
        program = Program()
        program.qreg("q", 2)
        with pytest.raises(ValueError):
            program.simulate(initial_state=Statevector(3))

    def test_prep_on_fresh_qubit(self):
        program = Program()
        q = program.qreg("q", 2)
        program.prep_z(q[0], 1)
        program.prep_z(q[1], 0)
        state = program.simulate()
        assert state.amplitude(1) == pytest.approx(1.0)

    def test_prep_resets_known_basis_state(self):
        program = Program()
        q = program.qreg("q", 1)
        program.x(q[0])
        program.prep_z(q[0], 0)  # reset back to |0>
        state = program.simulate()
        assert state.amplitude(0) == pytest.approx(1.0)

    def test_prep_on_superposed_qubit_uses_measurement_reset(self):
        program = Program()
        q = program.qreg("q", 1)
        program.h(q[0])
        program.prep_z(q[0], 0)
        state = program.simulate(rng=0)
        assert state.probability_of_outcome([0], 0) == pytest.approx(1.0)

    def test_assertions_are_skipped_during_simulation(self):
        program = Program()
        q = program.qreg("q", 1)
        program.h(q[0])
        program.assert_superposition(q)
        state = program.simulate()
        assert np.allclose(state.probabilities(), [0.5, 0.5])

    def test_unitary_of_hadamard_program(self):
        program = Program()
        q = program.qreg("q", 1)
        program.h(q[0])
        assert np.allclose(program.unitary(), gates.H)

    def test_unitary_rejects_preps(self):
        program = Program()
        q = program.qreg("q", 1)
        program.prep_z(q[0], 0)
        with pytest.raises(ValueError):
            program.unitary()


class TestStructuralOperations:
    def _qft_like_program(self):
        program = Program("body")
        q = program.qreg("q", 2)
        program.h(q[1]).cphase(q[0], q[1], math.pi / 2).h(q[0]).swap(q[0], q[1])
        return program, q

    def test_inverse_program_composes_to_identity(self):
        program, _ = self._qft_like_program()
        inverse = program.inverse()
        combined = Program("combined")
        combined.extend(program).extend(inverse)
        assert np.allclose(combined.unitary(), np.eye(4), atol=1e-10)

    def test_inverse_rejects_preps(self):
        program = Program()
        q = program.qreg("q", 1)
        program.prep_z(q[0], 0)
        with pytest.raises(ValueError):
            program.inverse()

    def test_controlled_on_adds_controls_to_every_gate(self):
        program, q = self._qft_like_program()
        control_program = Program("outer")
        control_register = control_program.qreg("c", 1)
        control_program.add_register(q[0].register)
        controlled = program.controlled_on(control_register[0])
        for instruction in controlled.gate_instructions():
            assert control_register[0] in instruction.controls

    def test_controlled_program_acts_trivially_when_control_zero(self):
        program, q = self._qft_like_program()
        host = Program("host")
        control = host.qreg("c", 1)
        host.add_register(q[0].register)
        host.extend(program.controlled_on(control[0]))
        state = host.simulate()
        # control stays |0>, so the whole body must be a no-op.
        assert state.amplitude(0) == pytest.approx(1.0)

    def test_power_repeats_program(self):
        program = Program()
        q = program.qreg("q", 1)
        program.x(q[0])
        assert np.allclose(program.power(2).unitary(), np.eye(2))
        assert np.allclose(program.power(3).unitary(), gates.X)
        with pytest.raises(ValueError):
            program.power(-1)

    def test_without_assertions(self):
        program = Program()
        q = program.qreg("q", 2)
        program.h(q[0])
        program.assert_superposition(q)
        stripped = program.without_assertions()
        assert len(stripped.assertions()) == 0
        assert stripped.num_gates() == 1

    def test_depth_and_counts(self):
        program = Program()
        q = program.qreg("q", 3)
        program.h(q[0]).h(q[1]).cnot(q[0], q[1]).h(q[2])
        assert program.depth() == 2
        assert program.num_gates() == 4

    def test_extend_merges_registers(self):
        sub = Program("sub")
        q = sub.qreg("q", 1)
        sub.x(q[0])
        main = Program("main")
        main.extend(sub)
        assert main.num_qubits == 1
        assert main.num_gates() == 1

    def test_describe_contains_gates_and_registers(self):
        program = Program("demo")
        q = program.qreg("q", 1)
        program.h(q[0])
        listing = program.describe()
        assert "qbit q[1]" in listing
        assert "h" in listing


class TestAssertionsStatements:
    def test_assertion_statements_recorded(self):
        program = Program()
        a = program.qreg("a", 2)
        b = program.qreg("b", 1)
        program.assert_classical(a, 2)
        program.assert_superposition(a, values=[0, 3])
        program.assert_entangled(a, b)
        program.assert_product(a, b)
        assert len(program.assertions()) == 4

    def test_classical_assertion_value_range(self):
        program = Program()
        a = program.qreg("a", 2)
        with pytest.raises(ValueError):
            program.assert_classical(a, 4)

    def test_qft_program_matches_dft_matrix(self):
        from repro.algorithms.qft import append_qft

        program = Program()
        q = program.qreg("q", 3)
        append_qft(program, q, swaps=True)
        assert np.allclose(program.unitary(), dft_matrix(3), atol=1e-10)
