"""Tests for the text circuit drawer."""

import pytest

from repro.algorithms.qft import build_qft_test_harness
from repro.lang import Program, draw, draw_moments


def bell_program():
    program = Program("bell")
    q = program.qreg("q", 2)
    program.prep_z(q[0], 0)
    program.prep_z(q[1], 0)
    program.h(q[0])
    program.cnot(q[0], q[1])
    program.assert_entangled([q[0]], [q[1]])
    program.measure(q)
    return program, q


class TestMoments:
    def test_parallel_gates_share_a_moment(self):
        program = Program()
        q = program.qreg("q", 2)
        program.h(q[0])
        program.h(q[1])
        assert len(draw_moments(program)) == 1

    def test_dependent_gates_get_separate_moments(self):
        program = Program()
        q = program.qreg("q", 2)
        program.h(q[0])
        program.cnot(q[0], q[1])
        program.h(q[0])
        assert len(draw_moments(program)) == 3

    def test_blocking_of_spanned_qubits(self):
        # A gate between q0 and q2 blocks q1's column even though q1 is untouched.
        program = Program()
        q = program.qreg("q", 3)
        program.cnot(q[0], q[2])
        program.h(q[1])
        moments = draw_moments(program)
        assert len(moments) == 2

    def test_barriers_and_markers_are_skipped(self):
        program = Program()
        q = program.qreg("q", 1)
        program.barrier()
        program.h(q[0])
        assert len(draw_moments(program)) == 1


class TestDraw:
    def test_bell_drawing_contains_expected_symbols(self):
        program, q = bell_program()
        text = draw(program)
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("q[0]:")
        assert "●" in lines[0]  # control
        assert "⊕" in lines[1]  # CNOT target
        assert "[H]" in lines[0]
        assert "[M]" in lines[0] and "[M]" in lines[1]
        assert "[A@]" in lines[0]  # entanglement assertion marker
        assert "|0>" in lines[0]

    def test_rows_have_equal_length(self):
        program = build_qft_test_harness(width=3, value=5)
        lines = draw(program).splitlines()
        assert len({len(line) for line in lines}) == 1
        assert len(lines) == 3

    def test_parameterised_gate_label(self):
        program = Program()
        q = program.qreg("q", 1)
        program.rz(q[0], 0.5)
        assert "RZ(0.5)" in draw(program)

    def test_swap_symbol(self):
        program = Program()
        q = program.qreg("q", 2)
        program.swap(q[0], q[1])
        text = draw(program)
        assert text.count("x") >= 2

    def test_classical_and_superposition_assertion_markers(self):
        program = Program()
        q = program.qreg("q", 2)
        program.assert_classical(q, 2)
        program.assert_superposition(q)
        text = draw(program)
        assert "[A=]" in text
        assert "[A~]" in text

    def test_wrapping_of_long_circuits(self):
        program = Program()
        q = program.qreg("q", 1)
        for _ in range(40):
            program.h(q[0])
        wrapped = draw(program, max_width=60)
        assert "....." in wrapped  # panel separator
        assert all(len(line) <= 60 for line in wrapped.splitlines())

    def test_multi_register_labels(self):
        program = Program()
        a = program.qreg("alpha", 1)
        b = program.qreg("b", 2)
        program.h(a[0])
        program.cnot(a[0], b[1])
        lines = draw(program).splitlines()
        assert lines[0].startswith("alpha[0]:")
        assert lines[1].strip().startswith("b[0]:")
        assert len(lines) == 3
