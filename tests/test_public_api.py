"""Public-API surface tests: ``__all__`` completeness and key exports.

Run with ``-W error::DeprecationWarning`` in CI together with
``test_config_session.py``: importing and exercising the public surface must
never trip a deprecation.
"""

import pytest

import repro
import repro.core
import repro.sim
import repro.workloads

PUBLIC_MODULES = [repro, repro.core, repro.sim, repro.workloads]


@pytest.mark.parametrize(
    "module", PUBLIC_MODULES, ids=lambda m: m.__name__
)
class TestAllCompleteness:
    def test_every_all_entry_resolves(self, module):
        missing = [name for name in module.__all__ if not hasattr(module, name)]
        assert not missing, f"{module.__name__}.__all__ names missing: {missing}"

    def test_no_duplicates(self, module):
        assert len(module.__all__) == len(set(module.__all__))

    def test_star_import_clean(self, module):
        namespace = {}
        exec(f"from {module.__name__} import *", namespace)
        for name in module.__all__:
            assert name in namespace


class TestKeyExports:
    def test_top_level_configuration_api(self):
        for name in ("RunConfig", "Session", "session", "check_program",
                     "StatisticalAssertionChecker", "DebugReport"):
            assert name in repro.__all__
        assert repro.session is repro.core.session
        assert repro.RunConfig is repro.core.RunConfig

    def test_sim_registry_api(self):
        for name in (
            "BACKENDS",
            "BackendCapabilities",
            "register_backend",
            "unregister_backend",
            "list_backends",
            "backend_capabilities",
            "make_backend",
            "make_noisy_backend",
        ):
            assert name in repro.sim.__all__

    def test_core_exports_config_and_session(self):
        for name in ("RunConfig", "Session", "session"):
            assert name in repro.core.__all__

    def test_legacy_compat_spellings_still_importable(self):
        # One release of grace: the historical import paths keep working.
        from repro.sim.backend import BACKENDS, make_backend, register_backend

        assert callable(make_backend) and callable(register_backend)
        assert "statevector" in BACKENDS

    def test_public_functions_documented(self):
        # Every public callable/class on the facade carries a docstring.
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"
