"""Tests for the bug taxonomy, bug injection scenarios and the workload sweeps."""

import pytest

from repro.bugs import BUG_CATALOG, BUG_SCENARIOS, BugType, defense_for, get_scenario, scenario_names
from repro.core import check_program
from repro.workloads import (
    assertion_cost,
    detection_rate,
    ensemble_size_sweep,
    false_positive_rate,
    significance_sweep,
)


class TestCatalog:
    def test_all_six_bug_types_documented(self):
        assert len(BUG_CATALOG) == 6
        assert {b.value for b in BUG_CATALOG} == {1, 2, 3, 4, 5, 6}

    def test_every_entry_names_a_defense(self):
        for description in BUG_CATALOG.values():
            assert description.defense
            assert description.assertion_types
            assert description.section.startswith("4.")

    def test_defense_lookup(self):
        assert "entangled" in defense_for(BugType.INCORRECT_RECURSION)
        assert "product" in defense_for(BugType.INCORRECT_MIRRORING)
        assert "classical" in defense_for(BugType.INCORRECT_CLASSICAL_INPUT)


class TestScenarios:
    def test_registry_covers_every_bug_type(self):
        covered = {scenario.bug_type for scenario in BUG_SCENARIOS.values()}
        assert covered == set(BugType)

    def test_get_scenario(self):
        assert get_scenario("control_routing").bug_type == BugType.INCORRECT_RECURSION
        with pytest.raises(KeyError):
            get_scenario("nonexistent")
        assert "control_routing" in scenario_names()

    @pytest.mark.parametrize("name", sorted(BUG_SCENARIOS))
    def test_correct_program_passes(self, name):
        scenario = BUG_SCENARIOS[name]
        report = check_program(
            scenario.build_correct(), ensemble_size=scenario.ensemble_size, rng=7
        )
        assert report.passed, f"{name}: {report.summary()}"

    @pytest.mark.parametrize("name", sorted(BUG_SCENARIOS))
    def test_buggy_program_is_caught(self, name):
        scenario = BUG_SCENARIOS[name]
        report = check_program(
            scenario.build_buggy(), ensemble_size=scenario.ensemble_size, rng=7
        )
        assert not report.passed, f"{name} was not caught"

    @pytest.mark.parametrize("name", sorted(BUG_SCENARIOS))
    def test_bug_is_caught_by_the_advertised_assertion(self, name):
        scenario = BUG_SCENARIOS[name]
        report = check_program(
            scenario.build_buggy(), ensemble_size=scenario.ensemble_size, rng=11
        )
        failing_types = {record.outcome.assertion_type for record in report.failures()}
        assert scenario.catching_assertion in failing_types


class TestWorkloads:
    def test_detection_rate_on_obvious_bug(self):
        scenario = BUG_SCENARIOS["flipped_rotation_angles"]
        rate = detection_rate(scenario.build_buggy, ensemble_size=8, trials=5, rng=1)
        assert rate == 1.0

    def test_false_positive_rate_on_correct_program(self):
        scenario = BUG_SCENARIOS["flipped_rotation_angles"]
        rate = false_positive_rate(scenario.build_correct, ensemble_size=8, trials=5, rng=1)
        assert rate == 0.0

    def test_ensemble_size_sweep_shape(self):
        scenario = BUG_SCENARIOS["control_routing"]
        rows = ensemble_size_sweep(
            scenario.build_correct,
            scenario.build_buggy,
            sizes=(8, 16),
            trials=3,
            rng=2,
        )
        assert [row["ensemble_size"] for row in rows] == [8, 16]
        for row in rows:
            assert 0.0 <= row["detection_rate"] <= 1.0
            assert 0.0 <= row["false_positive_rate"] <= 1.0

    def test_detection_improves_with_ensemble_size(self):
        """More measurements -> the entanglement assertion flags the routing bug more often."""
        scenario = BUG_SCENARIOS["control_routing"]
        small = detection_rate(scenario.build_buggy, ensemble_size=4, trials=8, rng=3)
        large = detection_rate(scenario.build_buggy, ensemble_size=64, trials=8, rng=3)
        assert large >= small

    def test_significance_sweep_shape(self):
        scenario = BUG_SCENARIOS["flipped_rotation_angles"]
        rows = significance_sweep(
            scenario.build_correct,
            scenario.build_buggy,
            significances=(0.01, 0.1),
            ensemble_size=8,
            trials=3,
            rng=4,
        )
        assert [row["significance"] for row in rows] == [0.01, 0.1]

    def test_assertion_cost_accounting(self):
        scenario = BUG_SCENARIOS["control_routing"]
        cost = assertion_cost(scenario.build_correct(), ensemble_size=16)
        assert cost["num_assertions"] == 4
        assert cost["total_prefix_gates"] > 0
        assert cost["rerun_mode_simulated_gates"] == cost["total_prefix_gates"] * 16
        assert len(cost["gates_per_breakpoint"]) == 4
        assert cost["gates_per_breakpoint"] == sorted(cost["gates_per_breakpoint"])
