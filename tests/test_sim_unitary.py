"""Tests for the closed-form unitary oracles used in cross-validation."""

import numpy as np
import pytest

from repro.sim import (
    Statevector,
    adder_permutation,
    dft_matrix,
    embed_matrix,
    gates,
    modular_multiplication_permutation,
    permutation_matrix,
    unitary_from_applications,
)


class TestDftMatrix:
    def test_is_unitary(self):
        for n in (1, 2, 3, 4):
            assert gates.is_unitary(dft_matrix(n))

    def test_inverse_is_conjugate_transpose(self):
        forward = dft_matrix(3)
        inverse = dft_matrix(3, inverse=True)
        assert np.allclose(forward @ inverse, np.eye(8))
        assert np.allclose(inverse, forward.conj().T)

    def test_one_qubit_dft_is_hadamard(self):
        assert np.allclose(dft_matrix(1), gates.H)

    def test_column_zero_is_uniform(self):
        matrix = dft_matrix(3)
        assert np.allclose(matrix[:, 0], np.full(8, 1 / np.sqrt(8)))


class TestPermutations:
    def test_permutation_matrix_round_trip(self):
        mapping = [2, 0, 3, 1]
        matrix = permutation_matrix(mapping)
        for source, destination in enumerate(mapping):
            state = np.zeros(4)
            state[source] = 1.0
            assert (matrix @ state)[destination] == 1.0

    def test_permutation_matrix_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            permutation_matrix([0, 0, 1, 2])

    def test_adder_permutation_wraps(self):
        matrix = adder_permutation(2, 3)
        state = np.zeros(4)
        state[2] = 1.0
        assert (matrix @ state)[1] == 1.0  # (2 + 3) mod 4 = 1

    def test_modular_multiplication_permutation(self):
        matrix = modular_multiplication_permutation(4, 7, 15)
        for x in range(15):
            state = np.zeros(16)
            state[x] = 1.0
            assert (matrix @ state)[(7 * x) % 15] == 1.0
        # 15 itself is outside the modulus and must stay put.
        state = np.zeros(16)
        state[15] = 1.0
        assert (matrix @ state)[15] == 1.0

    def test_modular_multiplication_requires_coprime(self):
        with pytest.raises(ValueError):
            modular_multiplication_permutation(4, 5, 15)

    def test_modular_multiplication_requires_fit(self):
        with pytest.raises(ValueError):
            modular_multiplication_permutation(3, 7, 15)


class TestEmbedding:
    def test_embed_single_qubit_gate(self):
        embedded = embed_matrix(gates.X, [1], 2)
        state = np.zeros(4)
        state[0] = 1.0
        assert (embedded @ state)[2] == 1.0

    def test_embed_matches_statevector_application(self):
        embedded = embed_matrix(gates.CNOT, [0, 2], 3)
        for basis in range(8):
            reference = Statevector.from_int(basis, 3)
            reference.apply_matrix(gates.CNOT, [0, 2])
            assert np.allclose(embedded[:, basis], reference.data)

    def test_unitary_from_applications_composes_in_order(self):
        applications = [(gates.H, [0]), (gates.CNOT, [0, 1])]
        matrix = unitary_from_applications(applications, 2)
        state = matrix @ np.array([1, 0, 0, 0], dtype=complex)
        assert np.allclose(np.abs(state) ** 2, [0.5, 0, 0, 0.5])
