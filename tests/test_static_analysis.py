"""Static assertion prover: abstract interpretation over ExecutionPlans.

Covers the stabilizer-domain interpreter (PROVEN / REFUTED / UNDECIDED
verdicts), the decidability boundary (non-Clifford gates taint), checker
short-circuiting via ``RunConfig(static_preflight=True)``, analysis caching,
and — the paper-level claim — that the static verdicts agree with the
sampled statistical tests on the full Clifford (scenario x variant) matrix
across every backend family.
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis import (
    PROVEN,
    REFUTED,
    UNDECIDED,
    AnalysisResult,
    analyze_program,
)
from repro.compiler.plan_cache import default_plan_cache
from repro.core import RunConfig, Session
from repro.lang import Program
from repro.sim.noise import NoiseModel, ReadoutErrorModel, depolarizing
from repro.workloads.clifford import CLIFFORD_SCENARIOS

SEED = 20190622
BACKENDS = ("statevector", "density", "stabilizer", "auto", "trajectory")


def _bell_program(flip: bool = False) -> Program:
    program = Program("bell")
    register = program.qreg("q", 2)
    program.prep_z(register[0], 0).prep_z(register[1], 0)
    program.h(register[0])
    if not flip:
        program.gate("x", [register[1]], controls=[register[0]])
    program.assert_entangled([register[0]], [register[1]])
    program.measure(register)
    return program


# ---------------------------------------------------------------------------
# Interpreter verdicts
# ---------------------------------------------------------------------------


class TestVerdicts:
    def test_bell_entanglement_proven(self):
        result = analyze_program(_bell_program())
        assert result.all_decided
        assert [v.verdict for v in result.verdicts] == [PROVEN]

    def test_broken_bell_entanglement_refuted(self):
        result = analyze_program(_bell_program(flip=True))
        assert [v.verdict for v in result.verdicts] == [REFUTED]

    def test_classical_assertion_decided_exactly(self):
        program = Program("classical")
        register = program.qreg("q", 3)
        program.prepare_int(register, 5)
        program.assert_classical(register, 5)
        program.assert_classical(register, 4, label="wrong")
        program.measure(register)
        result = analyze_program(program)
        assert [v.verdict for v in result.verdicts] == [PROVEN, REFUTED]
        assert result.verdicts[0].passed is True
        assert result.verdicts[1].passed is False

    def test_superposition_support_compared_exactly(self):
        program = Program("superposition")
        register = program.qreg("q", 2)
        program.prep_z(register[0], 0).prep_z(register[1], 0)
        program.h(register[0])
        program.assert_superposition([register[0]])
        program.assert_superposition(register, label="wrong: q[1] not in it")
        program.measure(register)
        result = analyze_program(program)
        assert [v.verdict for v in result.verdicts] == [PROVEN, REFUTED]

    def test_product_state_proven_for_independent_qubits(self):
        program = Program("product")
        register = program.qreg("q", 2)
        program.prep_z(register[0], 0).prep_z(register[1], 0)
        program.h(register[0]).h(register[1])
        program.assert_product([register[0]], [register[1]])
        program.measure(register)
        result = analyze_program(program)
        assert [v.verdict for v in result.verdicts] == [PROVEN]

    def test_non_clifford_gate_taints_operands(self):
        program = Program("tainted")
        register = program.qreg("q", 2)
        program.prep_z(register[0], 0).prep_z(register[1], 0)
        program.h(register[0])
        program.gate("t", register[0])  # non-Clifford: q[0] goes to top
        program.assert_superposition([register[0]])
        program.assert_classical([register[1]], 0, label="q[1] still clean")
        program.measure(register)
        result = analyze_program(program)
        assert [v.verdict for v in result.verdicts] == [UNDECIDED, PROVEN]
        assert not result.all_decided
        assert result.num_undecided == 1

    def test_taint_spreads_through_entangling_gates(self):
        program = Program("taint_spread")
        register = program.qreg("q", 2)
        program.prep_z(register[0], 0).prep_z(register[1], 0)
        program.gate("t", register[0])
        program.gate("x", [register[1]], controls=[register[0]])
        program.assert_classical([register[1]], 0)
        program.measure(register)
        result = analyze_program(program)
        assert [v.verdict for v in result.verdicts] == [UNDECIDED]

    def test_midcircuit_prep_on_entangled_qubit_taints_partner(self):
        # |q0 q1> is a Bell pair; re-prepping q1 collapses it, so q1 is a
        # known constant afterwards but q0's marginal depends on the
        # (unmodelled) collapse outcome — the interpreter must not claim it.
        program = Program("reprep")
        register = program.qreg("q", 2)
        program.prep_z(register[0], 0).prep_z(register[1], 0)
        program.h(register[0])
        program.gate("x", [register[1]], controls=[register[0]])
        program.prep_z(register[1], 0)
        program.assert_classical([register[1]], 0, label="freshly prepped")
        program.assert_superposition([register[0]], label="partner unknowable")
        program.measure(register)
        result = analyze_program(program)
        assert [v.verdict for v in result.verdicts] == [PROVEN, UNDECIDED]

    def test_verdict_round_trip(self):
        result = analyze_program(_bell_program())
        restored = AnalysisResult.from_dict(result.to_dict())
        assert restored.to_dict() == result.to_dict()
        assert restored.verdicts == result.verdicts


# ---------------------------------------------------------------------------
# Clifford corpus: fully decided at moderate and deep widths
# ---------------------------------------------------------------------------


class TestCorpusDecidability:
    @pytest.mark.parametrize("name", sorted(CLIFFORD_SCENARIOS))
    @pytest.mark.parametrize("buggy", [False, True])
    def test_moderate_widths_fully_decided(self, name, buggy):
        scenario = CLIFFORD_SCENARIOS[name]
        program = scenario.build(scenario.moderate_qubits, buggy)
        result = analyze_program(program)
        assert result.all_decided, result.summary()
        # The buggy variant must be statically refuted, the correct variant
        # statically proven throughout.
        if buggy:
            assert result.num_refuted >= 1
            refuted = [v for v in result.verdicts if v.verdict == REFUTED]
            assert any(
                v.assertion_type == scenario.catching_assertion for v in refuted
            )
        else:
            assert result.num_refuted == 0
            assert all(v.verdict == PROVEN for v in result.verdicts)

    @pytest.mark.parametrize("name", sorted(CLIFFORD_SCENARIOS))
    def test_deep_widths_fully_decided(self, name):
        scenario = CLIFFORD_SCENARIOS[name]
        for buggy in (False, True):
            program = scenario.build(scenario.deep_qubits, buggy)
            result = analyze_program(program)
            assert result.all_decided, result.summary()


# ---------------------------------------------------------------------------
# Static vs sampled agreement (scenario x variant x backend family)
# ---------------------------------------------------------------------------


class TestStaticSampledAgreement:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(CLIFFORD_SCENARIOS))
    @pytest.mark.parametrize("buggy", [False, True])
    def test_agreement_matrix(self, backend, name, buggy):
        scenario = CLIFFORD_SCENARIOS[name]
        program = scenario.build(scenario.moderate_qubits, buggy)
        static = analyze_program(program)
        assert static.all_decided
        session = Session(
            RunConfig(
                ensemble_size=scenario.ensemble_size,
                seed=SEED,
                backend=backend,
            )
        )
        report = session.check(program)
        assert len(report.records) == len(static.verdicts)
        for record, verdict in zip(report.records, static.verdicts):
            assert record.method == "sampled"
            assert record.passed == verdict.passed, (
                f"{name} buggy={buggy} backend={backend} breakpoint "
                f"{record.index}: sampled={record.passed} "
                f"static={verdict.verdict} ({verdict.reason})"
            )


# ---------------------------------------------------------------------------
# Checker integration: pre-flight short-circuiting
# ---------------------------------------------------------------------------


class TestStaticPreflight:
    def test_full_short_circuit_skips_executor_entirely(self):
        program = _bell_program()
        session = Session(RunConfig(seed=SEED, static_preflight=True))
        checker = session.checker(program)
        report = checker.run()
        assert checker.executor.gates_applied == 0
        assert report.num_static == len(report.records) == 1
        assert report.passed
        record = report.records[0]
        assert record.method == "static"
        assert record.ensemble_size == 0
        assert record.outcome.details["method"] == "static"

    def test_full_short_circuit_refutes_buggy_variant(self):
        report = Session(RunConfig(seed=SEED, static_preflight=True)).check(
            _bell_program(flip=True)
        )
        assert report.num_static == 1
        assert not report.passed

    def test_partial_short_circuit_mixes_methods(self):
        # Clifford prefix decides the first assertion; a T gate then taints
        # the register, so the later assertions must fall back to sampling.
        program = Program("mixed")
        register = program.qreg("q", 2)
        program.prep_z(register[0], 0).prep_z(register[1], 0)
        program.assert_classical(register, 0, label="decidable prefix")
        program.h(register[0])
        program.gate("t", register[0])
        program.gate("tdg", register[0])
        program.assert_superposition([register[0]], label="needs sampling")
        program.measure(register)
        session = Session(RunConfig(seed=SEED, static_preflight=True))
        report = session.check(program)
        methods = [record.method for record in report.records]
        assert methods == ["static", "sampled"]
        assert report.num_static == 1 and report.num_sampled == 1
        assert [record.index for record in report.records] == [0, 1]
        assert report.passed

    def test_preflight_off_by_default(self):
        report = Session(RunConfig(seed=SEED)).check(_bell_program())
        assert report.num_static == 0
        assert all(record.method == "sampled" for record in report.records)

    def test_gate_noise_disables_preflight(self):
        config = RunConfig(
            seed=SEED,
            static_preflight=True,
            backend="trajectory",
            noise=NoiseModel(gate_channels=(depolarizing(0.01),)),
        )
        report = Session(config).check(_bell_program())
        assert report.num_static == 0

    def test_readout_error_disables_preflight(self):
        config = RunConfig(
            seed=SEED,
            static_preflight=True,
            readout_error=ReadoutErrorModel(p01=0.05, p10=0.05),
        )
        report = Session(config).check(_bell_program())
        assert report.num_static == 0

    def test_short_circuit_savings_recorded(self):
        program = _bell_program()
        session = Session(RunConfig(seed=SEED, static_preflight=True))
        checker = session.checker(program)
        checker.run()
        plan = checker.execution_plan()
        assert plan.static_short_circuits == 1
        assert plan.static_gates_saved == plan.total_gates > 0
        stats = default_plan_cache().stats()
        assert stats["static_short_circuits"] == 1
        assert stats["static_gates_saved"] == plan.total_gates

    def test_corpus_short_circuits_match_plain_verdicts(self):
        for scenario in CLIFFORD_SCENARIOS.values():
            for buggy in (False, True):
                program = scenario.build(scenario.moderate_qubits, buggy)
                static_report = Session(
                    RunConfig(seed=SEED, static_preflight=True)
                ).check(program)
                assert static_report.num_sampled == 0
                assert static_report.passed == (not buggy)


# ---------------------------------------------------------------------------
# Caching and the Session facade
# ---------------------------------------------------------------------------


class TestAnalysisCaching:
    def test_analysis_cached_by_fingerprint(self):
        cache = default_plan_cache()
        session = Session(RunConfig(seed=SEED))
        first = session.analyze(_bell_program())
        second = session.analyze(_bell_program())
        assert first.verdicts == second.verdicts
        stats = cache.stats()
        assert stats["analysis_misses"] == 1
        assert stats["analysis_hits"] == 1

    def test_preflight_reuses_cached_analysis(self):
        session = Session(RunConfig(seed=SEED, static_preflight=True))
        session.analyze(_bell_program())
        session.check(_bell_program())
        stats = default_plan_cache().stats()
        assert stats["analysis_misses"] == 1
        assert stats["analysis_hits"] >= 1

    def test_session_analyze_returns_analysis_result(self):
        result = Session(RunConfig()).analyze(_bell_program())
        assert isinstance(result, AnalysisResult)
        assert result.fingerprint
        assert result.program_name == "bell"


# ---------------------------------------------------------------------------
# Report plumbing
# ---------------------------------------------------------------------------


class TestReportPlumbing:
    def test_method_and_diagnostics_round_trip(self):
        program = Program("roundtrip")
        register = program.qreg("q", 2)
        program.prepare_int(register, 2)
        program.assert_classical(register, 3, label="impossible")  # QLINT006
        program.measure(register)
        report = Session(RunConfig(seed=SEED, static_preflight=True)).check(program)
        assert report.num_static == 1
        assert not report.passed
        assert any(d["code"] == "QLINT006" for d in report.diagnostics)
        restored = repro.DebugReport.from_dict(report.to_dict())
        assert restored.to_dict() == report.to_dict()
        assert [r.method for r in restored.records] == ["static"]
        assert restored.diagnostics == report.diagnostics

    def test_describe_reports_split_and_diagnostics(self):
        program = Program("describe")
        register = program.qreg("q", 2)
        program.prepare_int(register, 2)
        program.assert_classical(register, 3)
        program.measure(register)
        report = Session(RunConfig(seed=SEED, static_preflight=True)).check(program)
        text = report.describe()
        assert "assertions: 1 static, 0 sampled" in text
        assert "QLINT006" in text

    def test_legacy_payload_defaults_to_sampled(self):
        report = Session(RunConfig(seed=SEED)).check(_bell_program())
        payload = report.to_dict()
        for record in payload["records"]:
            del record["method"]
        del payload["diagnostics"]
        restored = repro.DebugReport.from_dict(payload)
        assert all(record.method == "sampled" for record in restored.records)
        assert restored.diagnostics == []

    def test_runconfig_round_trips_static_preflight(self):
        config = RunConfig(seed=SEED, static_preflight=True)
        restored = RunConfig.from_dict(config.to_dict())
        assert restored.static_preflight is True
        assert restored == config


# ---------------------------------------------------------------------------
# Configurable support-enumeration cap (RunConfig.max_support)
# ---------------------------------------------------------------------------


def _ghz_program(num_qubits: int = 6) -> Program:
    program = Program("ghz_cap")
    register = program.qreg("q", num_qubits)
    for qubit in register:
        program.prep_z(qubit, 0)
    program.h(register[0])
    for i in range(num_qubits - 1):
        program.gate("x", [register[i + 1]], controls=[register[i]])
    program.assert_superposition(
        [register[0], register[-1]], values=(0, 3), label="ends"
    )
    program.assert_entangled([register[0]], [register[-1]], label="pair")
    program.measure(register)
    return program


class TestMaxSupport:
    def test_default_limit_decides_everything(self):
        result = analyze_program(_ghz_program())
        assert [v.verdict for v in result.verdicts] == [PROVEN, PROVEN]

    def test_tiny_cap_degrades_to_undecided(self):
        result = analyze_program(_ghz_program(), max_support=1)
        assert [v.verdict for v in result.verdicts] == [UNDECIDED, UNDECIDED]
        assert "1-outcome" in result.verdicts[0].reason

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            analyze_program(_ghz_program(), max_support=0)

    def test_plan_cache_keys_per_cap(self):
        from repro.compiler.plan_cache import PlanCache

        cache = PlanCache()
        plan = cache.plan_for(_ghz_program())
        default_a = cache.analysis_for(plan)
        default_b = cache.analysis_for(plan)
        capped_a = cache.analysis_for(plan, max_support=1)
        capped_b = cache.analysis_for(plan, max_support=1)
        assert default_a is default_b
        assert capped_a is capped_b
        assert default_a is not capped_a
        assert cache.analysis_hits == 2
        assert cache.analysis_misses == 2

    def test_runconfig_threads_cap_into_checker_analysis(self):
        capped = Session(RunConfig(seed=SEED, max_support=1)).checker(
            _ghz_program()
        )
        assert all(
            v.verdict == UNDECIDED for v in capped.analyze().verdicts
        )
        full = Session(RunConfig(seed=SEED)).checker(_ghz_program())
        assert all(v.verdict == PROVEN for v in full.analyze().verdicts)

    def test_runconfig_round_trips_max_support(self):
        config = RunConfig(seed=SEED, max_support=256)
        assert RunConfig.from_dict(config.to_dict()).max_support == 256
