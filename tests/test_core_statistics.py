"""Tests for the chi-square statistics underlying the assertions.

The numerical anchors here come straight from the paper: the Yates-corrected
2x2 contingency test on 16 perfectly correlated samples must give p ~= 0.0005
(Section 4.4), the degenerate one-column table must give p = 1.0
(Section 4.5), and an off-peak observation under the concentrated classical
null must give p = 0.0 (Section 4.3).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.core import statistics as stats


class TestChiSquareSurvival:
    def test_matches_scipy(self):
        for statistic, dof in [(0.5, 1), (3.84, 1), (10.0, 3), (25.0, 7)]:
            assert stats.chi_square_survival(statistic, dof) == pytest.approx(
                scipy_stats.chi2.sf(statistic, dof), rel=1e-10
            )

    def test_zero_dof_convention(self):
        assert stats.chi_square_survival(0.0, 0) == 1.0

    def test_infinite_statistic(self):
        assert stats.chi_square_survival(math.inf, 3) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            stats.chi_square_survival(1.0, -1)
        with pytest.raises(ValueError):
            stats.chi_square_survival(-1.0, 1)


class TestGoodnessOfFit:
    def test_uniform_data_against_uniform_null(self):
        observed = {i: 10 for i in range(8)}
        result = stats.chi_square_gof(observed, [1 / 8] * 8)
        assert result.statistic == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)
        assert result.dof == 7

    def test_matches_scipy_chisquare(self, rng):
        observed = rng.integers(1, 30, size=6)
        expected = np.full(6, observed.sum() / 6)
        ours = stats.chi_square_gof(np.asarray(observed, dtype=float), [1 / 6] * 6)
        reference = scipy_stats.chisquare(observed, expected)
        assert ours.statistic == pytest.approx(reference.statistic)
        assert ours.p_value == pytest.approx(reference.pvalue)

    def test_impossible_outcome_gives_zero_pvalue(self):
        result = stats.chi_square_gof(
            np.array([0.0, 0.0, 1.0, 1.0]), [0.5, 0.5, 0.0, 0.0]
        )
        assert math.isinf(result.statistic)
        assert result.p_value == 0.0

    def test_sample_list_input(self):
        result = stats.chi_square_gof([0, 1, 0, 1, 2, 2], [1 / 3] * 3)
        assert result.details["num_samples"] == 6

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            stats.chi_square_gof([1, 1], [0.5, 0.4])

    def test_long_float_distribution_is_renormalised_not_rejected(self):
        """Regression: a >20-qubit-support probability vector with realistic
        accumulated rounding error (~1e-8) must pass the sum-to-1 check and
        be renormalised, not spuriously rejected by a fixed 1e-9 tolerance."""
        size = 1 << 21
        probabilities = np.zeros(size)
        probabilities[:4] = 0.25
        probabilities[0] += 3e-8  # the kind of error sum(|amp|^2) accumulates
        result = stats.chi_square_gof({0: 4, 1: 4, 2: 4, 3: 4}, probabilities)
        assert result.p_value == pytest.approx(1.0)
        # The expected counts were renormalised to an exact distribution.
        assert sum(result.details["expected"]) == pytest.approx(16.0, abs=1e-9)

    def test_statevector_probabilities_accepted_at_scale(self):
        """The documented failure mode: Statevector.probabilities() output
        over many qubits feeds straight into the GoF test."""
        from repro.sim import Statevector

        num_qubits = 21
        state = Statevector.uniform_superposition(num_qubits)
        probabilities = state.probabilities()
        observed = {outcome: 1 for outcome in range(64)}
        result = stats.chi_square_gof(observed, probabilities)
        assert 0.0 <= result.p_value <= 1.0

    def test_genuinely_unnormalised_vector_still_rejected(self):
        size = 1 << 21
        probabilities = np.full(size, 1.0 / size)
        probabilities[0] += 1e-3
        with pytest.raises(ValueError, match="must sum to 1"):
            stats.chi_square_gof({0: 1}, probabilities)

    def test_small_vectors_keep_strict_tolerance(self):
        with pytest.raises(ValueError):
            stats.chi_square_gof([0, 1], [0.5, 0.5 + 1e-7])

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            stats.chi_square_gof({}, [0.5, 0.5])

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            stats.chi_square_gof([1, 1], [1.5, -0.5])

    def test_dense_histogram_must_match_length(self):
        with pytest.raises(ValueError):
            stats.chi_square_gof(np.array([1.0, 2.0]), [1 / 3] * 3)

    @given(
        counts=st.lists(st.integers(0, 40), min_size=2, max_size=8).filter(
            lambda c: sum(c) > 0
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pvalue_always_in_unit_interval(self, counts):
        probabilities = [1 / len(counts)] * len(counts)
        result = stats.chi_square_gof(np.asarray(counts, dtype=float), probabilities)
        assert 0.0 <= result.p_value <= 1.0
        assert result.statistic >= 0.0


class TestClassicalGof:
    def test_all_on_peak(self):
        result = stats.classical_gof({5: 16}, 32, 5)
        assert result.p_value == 1.0
        assert result.statistic == 0.0

    def test_any_off_peak_sample_gives_zero(self):
        result = stats.classical_gof({5: 15, 6: 1}, 32, 5)
        assert result.p_value == 0.0
        assert math.isinf(result.statistic)

    def test_sample_list_input(self):
        assert stats.classical_gof([3, 3, 3], 4, 3).p_value == 1.0
        assert stats.classical_gof([3, 2, 3], 4, 3).p_value == 0.0

    def test_expected_value_out_of_range(self):
        with pytest.raises(ValueError):
            stats.classical_gof([0], 4, 4)


class TestUniformGof:
    def test_uniform_over_support_subset(self):
        observed = {0: 8, 3: 8}
        full = stats.uniform_gof(observed, 4)
        restricted = stats.uniform_gof(observed, 4, support=[0, 3])
        assert full.p_value < 0.05  # clearly not uniform over all four values
        assert restricted.p_value == pytest.approx(1.0)

    def test_concentrated_data_rejected(self):
        result = stats.uniform_gof({0: 64}, 8)
        assert result.p_value < 1e-6

    def test_support_out_of_range(self):
        with pytest.raises(ValueError):
            stats.uniform_gof({0: 1}, 4, support=[0, 7])


class TestContingency:
    def test_paper_bell_state_value(self):
        """16 perfectly correlated samples -> p ~= 0.0005 with Yates correction."""
        table = np.array([[8, 0], [0, 8]])
        result = stats.contingency_chi_square(table)
        assert result.statistic == pytest.approx(12.25)
        assert result.p_value == pytest.approx(0.000465, abs=5e-5)
        assert result.details["yates"] is True

    def test_matches_scipy_with_yates(self):
        table = np.array([[12, 4], [3, 13]])
        ours = stats.contingency_chi_square(table, yates=True)
        chi2, p, dof, _ = scipy_stats.chi2_contingency(table, correction=True)
        assert ours.statistic == pytest.approx(chi2)
        assert ours.p_value == pytest.approx(p)
        assert ours.dof == dof

    def test_matches_scipy_without_yates(self):
        table = np.array([[10, 5, 3], [2, 8, 9], [4, 4, 4]])
        ours = stats.contingency_chi_square(table, yates=False)
        chi2, p, dof, _ = scipy_stats.chi2_contingency(table, correction=False)
        assert ours.statistic == pytest.approx(chi2)
        assert ours.p_value == pytest.approx(p)
        assert ours.dof == dof

    def test_degenerate_single_column_gives_p_one(self):
        """Section 4.5: one variable constant -> independence cannot be rejected."""
        table = np.array([[9.0], [7.0]])
        result = stats.contingency_chi_square(table)
        assert result.p_value == 1.0
        assert result.dof == 0
        assert result.details["degenerate"] is True

    def test_independent_variables_large_p(self):
        table = np.array([[20, 20], [20, 20]])
        assert stats.contingency_chi_square(table).p_value == pytest.approx(1.0)

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            stats.contingency_chi_square(np.zeros((2, 2)))

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            stats.contingency_chi_square(np.array([[1, -1], [2, 3]]))

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            stats.contingency_chi_square(np.array([1, 2, 3]))


class TestContingencyTableConstruction:
    def test_build_and_drop_empty(self):
        samples_a = [0, 0, 1, 1]
        samples_b = [3, 3, 5, 5]
        table = stats.build_contingency_table(samples_a, samples_b, 2, 8)
        assert table.shape == (2, 2)
        assert table[0, 0] == 2 and table[1, 1] == 2

    def test_without_dropping(self):
        table = stats.build_contingency_table([0, 1], [0, 1], 2, 4, drop_empty=False)
        assert table.shape == (2, 4)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            stats.build_contingency_table([0, 1], [0], 2, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stats.build_contingency_table([], [], 2, 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            stats.build_contingency_table([0, 2], [0, 1], 2, 2)

    def test_independence_wrapper(self):
        result = stats.independence_test_from_samples([0, 0, 1, 1], [1, 1, 0, 0], 2, 2)
        assert result.p_value < 0.5
        assert "joint_counts" in result.details


class TestAssociationMeasures:
    def test_cramers_v_perfect_association(self):
        table = np.array([[10, 0], [0, 10]])
        assert stats.cramers_v(table) == pytest.approx(1.0)

    def test_cramers_v_independent(self):
        table = np.array([[10, 10], [10, 10]])
        assert stats.cramers_v(table) == pytest.approx(0.0)

    def test_cramers_v_degenerate(self):
        assert stats.cramers_v(np.array([[5.0], [5.0]])) == 0.0

    def test_contingency_coefficient_range(self):
        table = np.array([[10, 2], [3, 12]])
        coefficient = stats.contingency_coefficient(table)
        assert 0.0 < coefficient < 1.0

    @given(
        a=st.integers(0, 30), b=st.integers(0, 30), c=st.integers(0, 30), d=st.integers(0, 30)
    )
    @settings(max_examples=60, deadline=None)
    def test_cramers_v_bounded(self, a, b, c, d):
        table = np.array([[a, b], [c, d]], dtype=float)
        if table.sum() == 0:
            return
        value = stats.cramers_v(table)
        assert -1e-9 <= value <= 1.0 + 1e-9
