"""Tests for OpenQASM 2.0 export and re-import."""

import math

import numpy as np
import pytest

from repro.algorithms.qft import append_qft
from repro.lang import Program, QasmError, from_qasm, to_qasm
from repro.lang.qasm import _format_angle


class TestExport:
    def test_header_and_register_declarations(self):
        program = Program()
        program.qreg("q", 3)
        text = to_qasm(program)
        assert text.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in text
        assert "qreg q[3];" in text

    def test_standard_gates(self):
        program = Program()
        q = program.qreg("q", 3)
        program.h(q[0]).cnot(q[0], q[1]).toffoli(q[0], q[1], q[2])
        program.rz(q[0], math.pi / 2).cphase(q[0], q[1], math.pi / 4)
        text = to_qasm(program)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "ccx q[0],q[1],q[2];" in text
        assert "rz(pi/2) q[0];" in text
        assert "cu1(pi/4) q[0],q[1];" in text

    def test_prep_exports_as_reset(self):
        program = Program()
        q = program.qreg("q", 1)
        program.prep_z(q[0], 1)
        text = to_qasm(program)
        assert "reset q[0];" in text
        assert "x q[0];" in text

    def test_measure_declares_creg(self):
        program = Program()
        q = program.qreg("q", 2)
        program.measure(q, label="m")
        text = to_qasm(program)
        assert "creg c0[2];" in text
        assert "measure q[0] -> c0[0];" in text

    def test_assertions_become_comments(self):
        program = Program()
        q = program.qreg("q", 2)
        program.assert_classical(q, 2)
        text = to_qasm(program)
        assert "// assert_classical" in text
        bare = to_qasm(program, include_assertions_as_comments=False)
        assert "assert_classical" not in bare

    def test_double_controlled_phase_is_decomposed(self):
        program = Program()
        q = program.qreg("q", 3)
        program.ccphase(q[0], q[1], q[2], math.pi / 2)
        text = to_qasm(program)
        assert text.count("cu1") == 3
        assert text.count("cx") == 2

    def test_unsupported_gate_raises(self):
        program = Program()
        q = program.qreg("q", 4)
        program.mcz([q[0], q[1], q[2]], q[3])
        with pytest.raises(QasmError):
            to_qasm(program)

    def test_format_angle(self):
        assert _format_angle(math.pi) == "pi"
        assert _format_angle(math.pi / 8) == "pi/8"
        assert _format_angle(-math.pi / 2) == "-1*pi/2"
        assert _format_angle(0.0) == "0"
        assert "0.123" in _format_angle(0.123)


class TestCliffordRoundTrip:
    """The full Clifford generator set must survive export + re-import."""

    @staticmethod
    def _clifford_program():
        from repro.lang import Program

        program = Program("clifford_generators")
        q = program.qreg("q", 3)
        program.h(q[0]).s(q[1]).sdg(q[2])
        program.x(q[0]).y(q[1]).z(q[2])
        program.cnot(q[0], q[1]).cz(q[1], q[2]).swap(q[0], q[2])
        return program

    def test_generator_spellings(self):
        from repro.lang import to_qasm

        text = to_qasm(self._clifford_program())
        for line in (
            "h q[0];",
            "s q[1];",
            "sdg q[2];",
            "x q[0];",
            "y q[1];",
            "z q[2];",
            "cx q[0],q[1];",
            "cz q[1],q[2];",
            "swap q[0],q[2];",
        ):
            assert line in text

    def test_round_trip_is_lossless(self):
        from repro.lang import from_qasm, to_qasm

        program = self._clifford_program()
        restored = from_qasm(to_qasm(program))
        assert np.allclose(restored.unitary(), program.unitary(), atol=1e-10)
        # The re-imported circuit is still Clifford end to end...
        from repro.lang import is_clifford_instruction

        assert all(is_clifford_instruction(i) for i in restored.instructions)
        # ...and still runs on the stabilizer tableau, distribution intact.
        assert np.allclose(
            restored.simulate(backend="stabilizer").probabilities(),
            program.simulate(backend="statevector").probabilities(),
            atol=1e-10,
        )


class TestImport:
    def test_round_trip_preserves_semantics(self):
        program = Program()
        q = program.qreg("q", 3)
        append_qft(program, q, swaps=True)
        text = to_qasm(program)
        restored = from_qasm(text)
        assert np.allclose(restored.unitary(), program.unitary(), atol=1e-10)

    def test_round_trip_bell(self):
        program = Program()
        q = program.qreg("q", 2)
        program.h(q[0]).cnot(q[0], q[1])
        restored = from_qasm(to_qasm(program))
        assert np.allclose(restored.unitary(), program.unitary())

    def test_import_measure_and_reset(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        reset q[0];
        h q[0];
        measure q[0] -> c[0];
        """
        program = from_qasm(text)
        assert program.num_qubits == 2
        assert len(program.instructions) == 3

    def test_import_rejects_unknown_gate(self):
        text = "OPENQASM 2.0;\nqreg q[1];\nmystery q[0];\n"
        with pytest.raises(QasmError):
            from_qasm(text)

    def test_import_rejects_unknown_register(self):
        text = "OPENQASM 2.0;\nqreg q[1];\nh r[0];\n"
        with pytest.raises(QasmError):
            from_qasm(text)

    def test_import_parses_pi_expressions(self):
        text = "OPENQASM 2.0;\nqreg q[1];\nrz(3*pi/4) q[0];\nu1(-pi/2) q[0];\n"
        program = from_qasm(text)
        params = [i.params[0] for i in program.gate_instructions()]
        assert params[0] == pytest.approx(3 * math.pi / 4)
        assert params[1] == pytest.approx(-math.pi / 2)

    def test_import_rejects_malformed_angle(self):
        text = "OPENQASM 2.0;\nqreg q[1];\nrz(import os) q[0];\n"
        with pytest.raises(QasmError):
            from_qasm(text)
