"""Tests for the Bernstein-Vazirani and Deutsch-Jozsa primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.oracles import (
    build_bernstein_vazirani_program,
    build_deutsch_jozsa_program,
    run_bernstein_vazirani,
    run_deutsch_jozsa,
)
from repro.core import check_program


class TestBernsteinVazirani:
    @pytest.mark.parametrize("hidden", [0, 1, 0b101, 0b1111])
    def test_recovers_hidden_string(self, hidden):
        result = run_bernstein_vazirani(hidden, 4, rng=0)
        assert result["success"]
        assert result["recovered"] == hidden
        assert set(result["counts"]) == {hidden}

    def test_single_query_structure(self):
        program, _ = build_bernstein_vazirani_program(0b011, 3, with_assertions=False)
        cnots = [i for i in program.gate_instructions() if i.name == "x" and i.controls]
        assert len(cnots) == 2  # one per set bit of the hidden string

    def test_assertions_pass(self, rng):
        program, _ = build_bernstein_vazirani_program(0b110, 3)
        report = check_program(program, ensemble_size=32, rng=rng)
        assert report.passed
        assert [r.outcome.assertion_type for r in report.records] == [
            "superposition",
            "classical",
        ]

    def test_wrong_expectation_is_caught(self, rng):
        """If the programmer asserts the wrong hidden string, the checker objects."""
        program, query = build_bernstein_vazirani_program(0b110, 3, with_assertions=False)
        # Insert a deliberately wrong postcondition before the measurement.
        program.assert_classical(query, 0b011, label="wrong expectation")
        report = check_program(program, ensemble_size=16, rng=rng)
        assert not report.passed

    def test_out_of_range_hidden_string(self):
        with pytest.raises(ValueError):
            build_bernstein_vazirani_program(8, 3)

    @given(hidden=st.integers(0, 31))
    @settings(max_examples=20, deadline=None)
    def test_property_any_hidden_string(self, hidden):
        assert run_bernstein_vazirani(hidden, 5, shots=8, rng=1)["success"]


class TestDeutschJozsa:
    @pytest.mark.parametrize("kind", ["constant0", "constant1"])
    def test_constant_oracles_decided_constant(self, kind):
        result = run_deutsch_jozsa(kind, 3, rng=0)
        assert result.correct
        assert result.decided_constant
        assert result.measured == 0

    @pytest.mark.parametrize("mask", [0b1, 0b101, 0b111])
    def test_balanced_oracles_decided_balanced(self, mask):
        result = run_deutsch_jozsa("balanced", 3, balanced_mask=mask, rng=0)
        assert result.correct
        assert not result.decided_constant
        assert result.measured == mask

    def test_assertions_pass_for_both_kinds(self):
        # A fixed seed keeps the 5%-per-breakpoint false-positive chance of the
        # superposition assertion from making this test flaky.
        for kind in ("constant0", "balanced"):
            program, _ = build_deutsch_jozsa_program(kind, 3)
            report = check_program(program, ensemble_size=32, rng=3)
            assert report.passed, kind

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_deutsch_jozsa_program("random", 3)
        with pytest.raises(ValueError):
            build_deutsch_jozsa_program("balanced", 3, balanced_mask=0)
