"""Observables subsystem: Pauli algebra, TPB grouping, estimation, exactness.

The contracts under test:

* :mod:`repro.observables.pauli` — label/mask round-trips, the product
  table, and the qubit-wise-commutation predicate grouping relies on;
* :mod:`repro.observables.grouping` — every grouping is a *partition* of
  the term indices into pairwise TPB-compatible settings, deterministically;
* cross-backend identity — the exact ``<H>`` agrees across statevector,
  density, stabilizer and auto backends to 1e-12 on Clifford states, and
  the tableau path reports itself exact with zero sampling shots;
* the checker end-to-end — ``assert_observable`` verdicts on sampled and
  exact paths, grouped == per-term verdicts under a shared seed, and the
  ``observable_shots_per_setting`` budget accounting;
* round-trips — QASM comment round-trip of observable assertions and
  RunConfig JSON round-trip of the two new knobs;
* the static analyzer — PROVEN/REFUTED on Clifford preparations and
  UNDECIDED once a non-Clifford rotation taints the support;
* the ``repro.chemistry.pauli`` deprecation shim.
"""

from __future__ import annotations

import importlib
import sys
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PauliString, PauliSum, Program, RunConfig, analyze_program
from repro.analysis import PROVEN, REFUTED, UNDECIDED
from repro.core.checker import StatisticalAssertionChecker
from repro.lang.program import run_instructions
from repro.lang.instructions import AssertObservableInstruction
from repro.lang.qasm import from_qasm, to_qasm
from repro.observables.exact import backend_expectation, exact_estimate
from repro.observables.grouping import group_terms
from repro.sim import make_backend
from repro.workloads.chemistry_observables import (
    OBSERVABLE_SCENARIOS,
    build_hf_energy_program,
    build_vqe_energy_program,
    ground_energy,
    h2_hamiltonian,
    hf_energy,
)

SEED = 20190622

#: All four backend families an exact Clifford expectation must agree on.
BACKENDS = ["statevector", "density", "stabilizer", "auto"]


def bell_program(expectation: float = 2.0, tolerance: float = 0.1) -> Program:
    """Bell pair asserting ``<ZZ + XX>`` (both stabilizers: exactly 2)."""
    program = Program("bell_observable")
    q = program.qreg("q", 2)
    program.h(q[0])
    program.cnot(q[0], q[1])
    program.assert_observable(
        q,
        PauliSum([PauliString.from_label("ZZ"), PauliString.from_label("XX")]),
        expectation=expectation,
        tolerance=tolerance,
    )
    return program


def ghz_program(n: int = 3) -> Program:
    program = Program(f"ghz{n}_observable")
    q = program.qreg("q", n)
    program.h(q[0])
    for i in range(n - 1):
        program.cnot(q[i], q[i + 1])
    return program


#: Random Pauli sums for the grouping property tests.
pauli_sums = st.integers(2, 5).flatmap(
    lambda n: st.lists(
        st.tuples(
            st.text(alphabet="IXYZ", min_size=n, max_size=n),
            st.floats(-2.0, 2.0, allow_nan=False),
        ),
        min_size=1,
        max_size=12,
    ).map(
        lambda pairs: PauliSum(
            [PauliString.from_label(label, c) for label, c in pairs]
        )
    )
)


# ---------------------------------------------------------------------------
# Pauli algebra
# ---------------------------------------------------------------------------


class TestPauliAlgebra:
    def test_label_round_trip(self):
        string = PauliString.from_label("XZIY", coefficient=0.5)
        assert string.label() == "XZIY"
        assert string.num_qubits == 4
        assert string.support() == [0, 1, 3]
        assert string.weight() == 3

    def test_mask_round_trip(self):
        string = PauliString.from_label("XZIY")
        x_mask, z_mask = string.symplectic_masks()
        assert (x_mask, z_mask) == (0b1001, 0b1010)
        rebuilt = PauliString.from_masks(x_mask, z_mask, num_qubits=4)
        assert rebuilt.ops == string.ops

    def test_product_table_phase(self):
        x = PauliString.from_label("X")
        y = PauliString.from_label("Y")
        product = x * y
        assert product.ops == ("Z",)
        assert product.coefficient == pytest.approx(1.0j)

    def test_commutes_vs_qubit_wise_commutes(self):
        xx = PauliString.from_label("XX")
        yy = PauliString.from_label("YY")
        # XX and YY commute as operators but share no tensor-product basis.
        assert xx.commutes_with(yy)
        assert not xx.qubit_wise_commutes_with(yy)
        # Disjoint or equal supports are TPB-compatible.
        assert PauliString.from_label("XI").qubit_wise_commutes_with(
            PauliString.from_label("IX")
        )
        assert xx.qubit_wise_commutes_with(PauliString.from_label("XI"))

    def test_simplify_combines_terms(self):
        total = PauliSum(
            [
                PauliString.from_label("ZZ", 0.5),
                PauliString.from_label("ZZ", 0.5),
                PauliString.from_label("XX", 1e-15),
            ]
        ).simplify()
        assert len(total) == 1
        assert total.terms[0].coefficient == pytest.approx(1.0)

    def test_h2_hamiltonian_is_hermitian_15_terms(self):
        hamiltonian = h2_hamiltonian()
        assert len(hamiltonian) == 15
        assert hamiltonian.is_hermitian()

    def test_invalid_label_rejected(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XQ")


# ---------------------------------------------------------------------------
# Grouping
# ---------------------------------------------------------------------------


def _assert_partition(observable: PauliSum, settings_list) -> None:
    covered = [i for s in settings_list for i in s.term_indices]
    assert sorted(covered) == list(range(len(observable)))
    assert len(covered) == len(set(covered))


def _assert_compatible(observable: PauliSum, settings_list) -> None:
    terms = observable.terms
    for setting in settings_list:
        for index in setting.term_indices:
            for q, op in enumerate(terms[index].ops):
                if op != "I":
                    assert setting.basis[q] == op
        for a in setting.term_indices:
            for b in setting.term_indices:
                assert terms[a].qubit_wise_commutes_with(terms[b])


class TestGrouping:
    def test_h2_grouping_recovers_five_settings(self):
        hamiltonian = h2_hamiltonian()
        grouped = group_terms(hamiltonian, grouped=True)
        per_term = group_terms(hamiltonian, grouped=False)
        assert len(grouped) == 5
        assert len(per_term) == 15
        _assert_partition(hamiltonian, grouped)
        _assert_partition(hamiltonian, per_term)
        _assert_compatible(hamiltonian, grouped)

    def test_grouping_is_deterministic(self):
        hamiltonian = h2_hamiltonian()
        assert group_terms(hamiltonian) == group_terms(hamiltonian)

    def test_identity_only_observable_needs_no_measurement(self):
        constant = PauliSum([PauliString.identity(3, coefficient=1.5)])
        (setting,) = group_terms(constant)
        assert setting.support() == []
        assert setting.term_indices == (0,)

    @given(observable=pauli_sums)
    @settings(max_examples=60, deadline=None)
    def test_grouped_settings_partition_and_commute(self, observable):
        grouped = group_terms(observable, grouped=True)
        _assert_partition(observable, grouped)
        _assert_compatible(observable, grouped)

    @given(observable=pauli_sums)
    @settings(max_examples=30, deadline=None)
    def test_per_term_baseline_is_one_setting_per_term(self, observable):
        per_term = group_terms(observable, grouped=False)
        assert len(per_term) == len(observable)
        _assert_partition(observable, per_term)


# ---------------------------------------------------------------------------
# Cross-backend exact identity
# ---------------------------------------------------------------------------


class TestCrossBackendIdentity:
    @pytest.mark.parametrize(
        "build, observable, expected",
        [
            (
                bell_program,
                PauliSum(
                    [PauliString.from_label("ZZ"), PauliString.from_label("XX")]
                ),
                2.0,
            ),
            (
                ghz_program,
                PauliSum(
                    [
                        PauliString.from_label("ZZI"),
                        PauliString.from_label("IZZ"),
                        PauliString.from_label("XXX"),
                    ]
                ),
                3.0,
            ),
            (build_hf_energy_program, None, None),  # H2 at the HF reference
        ],
        ids=["bell", "ghz3", "hf"],
    )
    def test_exact_expectation_identical_across_backends(
        self, build, observable, expected
    ):
        program = build()
        if observable is None:
            observable, expected = h2_hamiltonian(), hf_energy()
        values = {}
        for name in BACKENDS:
            backend = make_backend(name).initialize(program.num_qubits)
            run_instructions(program, program.instructions, backend)
            values[name] = backend_expectation(backend, observable)
        reference = values["statevector"]
        assert reference == pytest.approx(expected, abs=1e-9)
        for name, value in values.items():
            assert abs(value - reference) <= 1e-12, (name, value, reference)

    def test_tableau_estimate_is_exact_and_free(self):
        program = bell_program()
        backend = make_backend("stabilizer").initialize(program.num_qubits)
        run_instructions(program, program.instructions, backend)
        estimate = exact_estimate(
            backend,
            PauliSum([PauliString.from_label("ZZ"), PauliString.from_label("XX")]),
        )
        assert estimate.exact
        assert estimate.num_settings == 0
        assert estimate.total_shots == 0
        assert estimate.standard_error == 0.0
        assert estimate.value == pytest.approx(2.0, abs=1e-12)
        assert [t.value for t in estimate.terms] == pytest.approx([1.0, 1.0])


# ---------------------------------------------------------------------------
# Checker end-to-end
# ---------------------------------------------------------------------------


def _single_record(program: Program, config: RunConfig):
    report = StatisticalAssertionChecker(program, config).run()
    (record,) = report.records
    return report, record


class TestCheckerEndToEnd:
    def test_sampled_observable_passes(self):
        config = RunConfig(backend="statevector", seed=SEED)
        report, record = _single_record(bell_program(), config)
        assert report.passed and record.outcome.passed
        assert record.outcome.assertion_type == "observable"
        assert record.method == "observable"
        details = record.outcome.details
        assert details["exact"] is False
        assert details["num_settings"] == 2  # ZZ and XX cannot share a basis
        assert details["total_shots"] == 2 * config.observable_shots_per_setting
        assert details["mean"] == pytest.approx(2.0, abs=0.1)

    def test_sampled_observable_fails_on_wrong_expectation(self):
        config = RunConfig(backend="statevector", seed=SEED)
        _, record = _single_record(
            bell_program(expectation=0.0, tolerance=0.1), config
        )
        assert not record.outcome.passed

    def test_exact_observable_zero_shots(self):
        for backend in ("stabilizer", "auto"):
            config = RunConfig(backend=backend, seed=SEED)
            report, record = _single_record(build_hf_energy_program(), config)
            assert report.passed
            details = record.outcome.details
            assert details["exact"] is True
            assert details["total_shots"] == 0
            assert record.ensemble_size == 0
            assert details["mean"] == pytest.approx(hf_energy(), abs=1e-12)

    def test_exact_observable_refutes_bug(self):
        config = RunConfig(backend="auto", seed=SEED)
        report, record = _single_record(
            build_hf_energy_program(buggy=True), config
        )
        assert not report.passed
        assert record.outcome.details["exact"] is True

    def test_shots_per_setting_budget(self):
        config = RunConfig(
            backend="statevector", seed=SEED, observable_shots_per_setting=64
        )
        _, record = _single_record(bell_program(), config)
        assert record.outcome.details["total_shots"] == 2 * 64

    def test_grouped_and_per_term_verdicts_identical(self):
        for build in (
            bell_program,
            lambda: build_vqe_energy_program(),
            lambda: build_vqe_energy_program(buggy=True),
        ):
            outcomes = {}
            for grouped in (True, False):
                config = RunConfig(
                    backend="statevector", seed=SEED, group_observables=grouped
                )
                _, record = _single_record(build(), config)
                outcomes[grouped] = record.outcome.passed
            assert outcomes[True] == outcomes[False]

    def test_h2_settings_reduction(self):
        grouped_cfg = RunConfig(backend="statevector", seed=SEED)
        per_term_cfg = grouped_cfg.replace(group_observables=False)
        _, grouped = _single_record(build_vqe_energy_program(), grouped_cfg)
        _, per_term = _single_record(build_vqe_energy_program(), per_term_cfg)
        assert grouped.outcome.details["num_settings"] == 5
        assert per_term.outcome.details["num_settings"] == 15
        assert per_term.outcome.passed == grouped.outcome.passed

    def test_scenario_catalog_verdicts(self):
        for name, scenario in OBSERVABLE_SCENARIOS.items():
            config = RunConfig(backend="auto", seed=SEED)
            correct_report = StatisticalAssertionChecker(
                scenario.build_correct(), config
            ).run()
            buggy_report = StatisticalAssertionChecker(
                scenario.build_buggy(), config
            ).run()
            assert correct_report.passed, name
            assert not buggy_report.passed, name

    def test_vqe_expectation_hits_ground_energy(self):
        config = RunConfig(backend="statevector", seed=SEED)
        _, record = _single_record(build_vqe_energy_program(), config)
        assert record.outcome.details["mean"] == pytest.approx(
            ground_energy(), abs=0.02
        )


# ---------------------------------------------------------------------------
# Round-trips
# ---------------------------------------------------------------------------


class TestRoundTrips:
    def test_qasm_round_trip_preserves_observable_assertion(self):
        program = build_hf_energy_program()
        text = to_qasm(program)
        assert "assert_observable" in text
        rebuilt = from_qasm(text)
        original = next(
            i
            for i in program.instructions
            if isinstance(i, AssertObservableInstruction)
        )
        restored = next(
            i
            for i in rebuilt.instructions
            if isinstance(i, AssertObservableInstruction)
        )
        assert len(restored.targets) == len(original.targets)
        assert restored.expectation == pytest.approx(original.expectation)
        assert restored.tolerance == pytest.approx(original.tolerance)
        want = sorted(
            (t.label(), complex(t.coefficient)) for t in original.observable
        )
        got = sorted(
            (t.label(), complex(t.coefficient)) for t in restored.observable
        )
        assert len(got) == len(want)
        for (got_label, got_c), (want_label, want_c) in zip(got, want):
            assert got_label == want_label
            assert got_c == pytest.approx(want_c, abs=1e-9)

    def test_qasm_round_trip_preserves_verdict(self):
        config = RunConfig(backend="statevector", seed=SEED)
        original = StatisticalAssertionChecker(bell_program(), config).run()
        rebuilt_program = from_qasm(to_qasm(bell_program()))
        rebuilt = StatisticalAssertionChecker(rebuilt_program, config).run()
        assert rebuilt.passed == original.passed
        assert (
            rebuilt.records[0].outcome.details["num_settings"]
            == original.records[0].outcome.details["num_settings"]
        )

    def test_runconfig_round_trip_preserves_observable_knobs(self):
        config = RunConfig(
            observable_shots_per_setting=128, group_observables=False
        )
        rebuilt = RunConfig.from_json(config.to_json())
        assert rebuilt.observable_shots_per_setting == 128
        assert rebuilt.group_observables is False
        assert rebuilt == config

    @pytest.mark.parametrize("bad", [0, -1])
    def test_shots_per_setting_must_be_positive(self, bad):
        with pytest.raises(ValueError):
            RunConfig(observable_shots_per_setting=bad)

    def test_assert_observable_validation(self):
        program = Program("invalid")
        q = program.qreg("q", 2)
        zz = PauliSum([PauliString.from_label("ZZ")])
        with pytest.raises(ValueError):
            program.assert_observable([q[0], q[0]], zz, expectation=1.0)
        with pytest.raises(ValueError):
            program.assert_observable([q[0]], zz, expectation=1.0)
        with pytest.raises(ValueError):
            program.assert_observable(q, zz, expectation=1.0, tolerance=-0.5)
        with pytest.raises(ValueError):
            program.assert_observable(
                q,
                PauliSum([PauliString.from_label("ZZ", 1.0j)]),
                expectation=1.0,
            )


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------


class TestStaticObservable:
    def test_clifford_observable_proven(self):
        result = analyze_program(build_hf_energy_program())
        (verdict,) = result.verdicts
        assert verdict.assertion_type == "observable"
        assert verdict.verdict == PROVEN

    def test_clifford_observable_refuted(self):
        result = analyze_program(build_hf_energy_program(buggy=True))
        (verdict,) = result.verdicts
        assert verdict.verdict == REFUTED

    def test_non_clifford_support_undecided(self):
        result = analyze_program(build_vqe_energy_program())
        (verdict,) = result.verdicts
        assert verdict.verdict == UNDECIDED

    def test_static_preflight_short_circuits_checker(self):
        config = RunConfig(backend="auto", seed=SEED, static_preflight=True)
        report, record = _single_record(build_hf_energy_program(), config)
        assert report.passed
        assert record.method == "static"
        assert record.ensemble_size == 0


# ---------------------------------------------------------------------------
# Deprecation shim
# ---------------------------------------------------------------------------


class TestChemistryPauliShim:
    def test_import_warns_and_reexports(self):
        sys.modules.pop("repro.chemistry.pauli", None)
        with pytest.warns(DeprecationWarning, match="repro.observables"):
            shim = importlib.import_module("repro.chemistry.pauli")
        assert shim.PauliString is PauliString
        assert shim.PauliSum is PauliSum

    def test_new_location_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            module = importlib.reload(
                importlib.import_module("repro.observables.pauli")
            )
        assert module.PauliString.from_label("Z").label() == "Z"
