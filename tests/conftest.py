"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chemistry import build_h2_qubit_hamiltonian
from repro.compiler.plan_cache import default_plan_cache


@pytest.fixture(autouse=True)
def _fresh_plan_cache():
    """Isolate tests from the process-global plan/snapshot cache.

    Snapshot reuse is verdict-preserving but changes gate *counters*, so a
    warm cache would make work-bound assertions order-dependent across tests.
    """
    default_plan_cache().clear()
    yield
    default_plan_cache().clear()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible statistical tests."""
    return np.random.default_rng(20190622)  # ISCA'19 dates


@pytest.fixture(scope="session")
def h2_hamiltonian():
    """The 4-qubit H2 Hamiltonian (built once per session; it is static data)."""
    return build_h2_qubit_hamiltonian()
