"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chemistry import build_h2_qubit_hamiltonian


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible statistical tests."""
    return np.random.default_rng(20190622)  # ISCA'19 dates


@pytest.fixture(scope="session")
def h2_hamiltonian():
    """The 4-qubit H2 Hamiltonian (built once per session; it is static data)."""
    return build_h2_qubit_hamiltonian()
