"""Unit tests for the gate matrix library."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import gates


ALL_FIXED = sorted(set(map(id, gates.FIXED_GATES.values())))


class TestFixedGates:
    def test_every_fixed_gate_is_unitary(self):
        for name, matrix in gates.FIXED_GATES.items():
            assert gates.is_unitary(matrix), f"{name} is not unitary"

    def test_pauli_algebra(self):
        assert np.allclose(gates.X @ gates.X, gates.I)
        assert np.allclose(gates.Y @ gates.Y, gates.I)
        assert np.allclose(gates.Z @ gates.Z, gates.I)
        assert np.allclose(gates.X @ gates.Y, 1j * gates.Z)
        assert np.allclose(gates.Y @ gates.Z, 1j * gates.X)
        assert np.allclose(gates.Z @ gates.X, 1j * gates.Y)

    def test_hadamard_maps_z_to_x(self):
        assert np.allclose(gates.H @ gates.Z @ gates.H, gates.X)
        assert np.allclose(gates.H @ gates.X @ gates.H, gates.Z)

    def test_s_and_t_phases(self):
        assert np.allclose(gates.S @ gates.S, gates.Z)
        assert np.allclose(gates.T @ gates.T, gates.S)
        assert np.allclose(gates.S @ gates.SDG, gates.I)
        assert np.allclose(gates.T @ gates.TDG, gates.I)

    def test_sx_squares_to_x(self):
        assert np.allclose(gates.SX @ gates.SX, gates.X)

    def test_cnot_permutation(self):
        # control = qubit 0 (LSB), target = qubit 1.
        expected = np.zeros((4, 4))
        mapping = {0: 0, 1: 3, 2: 2, 3: 1}
        for source, destination in mapping.items():
            expected[destination, source] = 1.0
        assert np.allclose(gates.CNOT, expected)

    def test_toffoli_flips_only_when_both_controls_set(self):
        for state in range(8):
            column = gates.CCNOT[:, state]
            if state & 0b011 == 0b011:
                assert column[state ^ 0b100] == 1.0
            else:
                assert column[state] == 1.0

    def test_cswap_swaps_targets_when_control_set(self):
        # control = qubit 0, swapped = qubits 1 and 2.
        for state in range(8):
            column = gates.CSWAP[:, state]
            if state & 1:
                bit1 = (state >> 1) & 1
                bit2 = (state >> 2) & 1
                swapped = (state & 1) | (bit2 << 1) | (bit1 << 2)
                assert column[swapped] == 1.0
            else:
                assert column[state] == 1.0


class TestParameterisedGates:
    @pytest.mark.parametrize("builder", [gates.rx, gates.ry, gates.rz, gates.phase])
    @pytest.mark.parametrize("theta", [0.0, 0.3, math.pi / 2, math.pi, -1.7])
    def test_unitary(self, builder, theta):
        assert gates.is_unitary(builder(theta))

    def test_rotation_at_zero_is_identity(self):
        for builder in (gates.rx, gates.ry, gates.rz, gates.phase):
            assert np.allclose(builder(0.0), gates.I)

    def test_rx_pi_is_x_up_to_phase(self):
        assert gates.gates_equal_up_to_global_phase(gates.rx(math.pi), gates.X)

    def test_ry_pi_is_y_up_to_phase(self):
        assert gates.gates_equal_up_to_global_phase(gates.ry(math.pi), gates.Y)

    def test_rz_pi_is_z_up_to_phase(self):
        assert gates.gates_equal_up_to_global_phase(gates.rz(math.pi), gates.Z)

    def test_phase_vs_rz_differ_by_global_phase_only(self):
        theta = 0.42
        assert gates.gates_equal_up_to_global_phase(gates.phase(theta), gates.rz(theta))
        assert not np.allclose(gates.phase(theta), gates.rz(theta))

    def test_u3_reduces_to_known_gates(self):
        assert np.allclose(gates.u3(0.0, 0.0, 0.0), gates.I)
        assert gates.gates_equal_up_to_global_phase(
            gates.u3(math.pi, 0.0, math.pi), gates.X
        )
        assert gates.gates_equal_up_to_global_phase(
            gates.u3(math.pi / 2, 0.0, math.pi), gates.H
        )

    @given(theta=st.floats(-10, 10), phi=st.floats(-10, 10), lam=st.floats(-10, 10))
    @settings(max_examples=50, deadline=None)
    def test_u3_always_unitary(self, theta, phi, lam):
        assert gates.is_unitary(gates.u3(theta, phi, lam))

    @given(theta=st.floats(-10, 10))
    @settings(max_examples=50, deadline=None)
    def test_rotation_composition(self, theta):
        """Rz(a) Rz(b) == Rz(a+b)."""
        assert np.allclose(
            gates.rz(theta) @ gates.rz(0.5), gates.rz(theta + 0.5), atol=1e-10
        )


class TestControlled:
    def test_controlled_x_is_cnot(self):
        assert np.allclose(gates.controlled(gates.X), gates.CNOT)

    def test_doubly_controlled_x_is_toffoli(self):
        assert np.allclose(gates.controlled(gates.X, 2), gates.CCNOT)

    def test_controlled_z_is_cz(self):
        assert np.allclose(gates.controlled(gates.Z), gates.CZ)

    def test_controlled_swap_is_fredkin(self):
        assert np.allclose(gates.controlled(gates.SWAP), gates.CSWAP)

    def test_zero_controls_is_identity_operation(self):
        assert np.allclose(gates.controlled(gates.H, 0), gates.H)

    def test_negative_controls_rejected(self):
        with pytest.raises(ValueError):
            gates.controlled(gates.X, -1)

    def test_controlled_preserves_unitarity(self):
        for num_controls in range(4):
            assert gates.is_unitary(gates.controlled(gates.ry(0.7), num_controls))

    def test_controlled_phase_structure(self):
        theta = 0.9
        matrix = gates.controlled(gates.phase(theta))
        expected = np.diag([1, 1, 1, np.exp(1j * theta)])
        assert np.allclose(matrix, expected)


class TestHelpers:
    def test_kron_all_orders_factors_little_endian(self):
        # X on qubit 0, I on qubit 1 -> acts on the low bit.
        matrix = gates.kron_all([gates.X, gates.I])
        state = np.zeros(4)
        state[0] = 1.0
        assert np.allclose(matrix @ state, [0, 1, 0, 0])

    def test_global_phase_between_detects_phase(self):
        phase = np.exp(0.3j)
        assert np.isclose(
            gates.global_phase_between(phase * gates.H, gates.H), phase
        )

    def test_global_phase_between_rejects_different_gates(self):
        assert gates.global_phase_between(gates.X, gates.Z) is None

    def test_gates_equal_up_to_global_phase(self):
        assert gates.gates_equal_up_to_global_phase(1j * gates.Y, gates.Y)
        assert not gates.gates_equal_up_to_global_phase(gates.X, gates.Y)

    def test_is_unitary_rejects_non_square(self):
        assert not gates.is_unitary(np.ones((2, 3)))

    def test_is_unitary_rejects_singular(self):
        assert not gates.is_unitary(np.zeros((2, 2)))
