"""Tests for the Fourier-space constant adder (Listings 2-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.arithmetic import (
    append_add_const,
    append_phi_add_const,
    append_phi_sub_const,
    build_cadd_program,
    build_cadd_test_harness,
)
from repro.algorithms.qft import append_iqft, append_qft
from repro.core import check_program
from repro.lang import Program
from repro.sim import adder_permutation


class TestAdderUnitary:
    @pytest.mark.parametrize("width", [2, 3])
    def test_adder_matches_permutation_for_every_constant(self, width):
        for constant in range(1 << width):
            program = build_cadd_program(width, constant)
            assert np.allclose(
                program.unitary(), adder_permutation(width, constant), atol=1e-9
            ), f"width={width} constant={constant}"

    def test_subtraction_is_adder_inverse(self):
        program = Program()
        b = program.qreg("b", 3)
        append_qft(program, b)
        append_phi_add_const(program, b, 5)
        append_phi_sub_const(program, b, 5)
        append_iqft(program, b)
        assert np.allclose(program.unitary(), np.eye(8), atol=1e-10)

    def test_addition_wraps_modulo_power_of_two(self):
        program = Program()
        b = program.qreg("b", 3)
        program.prepare_int(b, 6)
        append_add_const(program, b, 5)
        state = program.simulate()
        indices = [program.qubit_index(q) for q in b]
        assert state.probability_of_outcome(indices, (6 + 5) % 8) == pytest.approx(1.0)

    @given(width=st.integers(2, 4), b_value=st.integers(0, 15), constant=st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_adder_property(self, width, b_value, constant):
        b_value %= 1 << width
        constant %= 1 << width
        program = Program()
        b = program.qreg("b", width)
        program.prepare_int(b, b_value)
        append_add_const(program, b, constant)
        state = program.simulate()
        indices = [program.qubit_index(q) for q in b]
        expected = (b_value + constant) % (1 << width)
        assert state.probability_of_outcome(indices, expected) == pytest.approx(1.0)


class TestControlledAdder:
    def test_controlled_adder_inactive_without_controls_set(self):
        program = Program()
        ctrl = program.qreg("ctrl", 2)
        b = program.qreg("b", 3)
        program.prepare_int(b, 3)
        append_qft(program, b)
        append_phi_add_const(program, b, 2, controls=ctrl)
        append_iqft(program, b)
        state = program.simulate()
        indices = [program.qubit_index(q) for q in b]
        assert state.probability_of_outcome(indices, 3) == pytest.approx(1.0)

    def test_controlled_adder_active_when_controls_set(self):
        program = Program()
        ctrl = program.qreg("ctrl", 2)
        b = program.qreg("b", 3)
        program.x(ctrl[0])
        program.x(ctrl[1])
        program.prepare_int(b, 3)
        append_qft(program, b)
        append_phi_add_const(program, b, 2, controls=ctrl)
        append_iqft(program, b)
        state = program.simulate()
        indices = [program.qubit_index(q) for q in b]
        assert state.probability_of_outcome(indices, 5) == pytest.approx(1.0)

    def test_single_control_superposition_entangles(self):
        program = Program()
        ctrl = program.qreg("ctrl", 1)
        b = program.qreg("b", 3)
        program.h(ctrl[0])
        program.prepare_int(b, 1)
        append_qft(program, b)
        append_phi_add_const(program, b, 4, controls=ctrl)
        append_iqft(program, b)
        program.assert_entangled(ctrl, b)
        report = check_program(program, ensemble_size=32, rng=11)
        assert report.passed


class TestListing3Harness:
    def test_correct_adder_passes_postcondition(self, rng):
        report = check_program(build_cadd_test_harness(), ensemble_size=16, rng=rng)
        assert report.passed
        assert report.p_values() == [1.0, 1.0]

    def test_flipped_angles_bug_gives_pvalue_zero(self, rng):
        """Section 4.3: the Table 1 bug makes the output assertion return p = 0.0."""
        report = check_program(
            build_cadd_test_harness(angle_sign=-1.0), ensemble_size=16, rng=rng
        )
        assert not report.passed
        assert report.records[0].p_value == 1.0  # precondition still fine
        assert report.records[1].p_value == 0.0  # postcondition catches the bug

    def test_harness_width_check(self):
        with pytest.raises(ValueError):
            build_cadd_test_harness(width=4, b_value=12, constant=13)

    def test_other_operand_values(self, rng):
        report = check_program(
            build_cadd_test_harness(width=6, b_value=20, constant=21),
            ensemble_size=16,
            rng=rng,
        )
        assert report.passed
