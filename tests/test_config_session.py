"""RunConfig / Session facade and backend-registry tests.

This module is run with ``-W error::DeprecationWarning`` in CI: the new API
must be deprecation-clean, and every *legacy* kwarg spelling must emit a
DeprecationWarning (asserted via ``pytest.warns``, which is exempt from the
strict filter).
"""

import json
import warnings

import numpy as np
import pytest

import repro
from repro import Program, RunConfig, Session, check_program, session
from repro.core import DebugReport, StatisticalAssertionChecker
from repro.core.exceptions import AssertionViolation
from repro.compiler.executor import BreakpointExecutor
from repro.compiler.plan_cache import default_plan_cache
from repro.sim import (
    BackendCapabilities,
    ReadoutErrorModel,
    StatevectorBackend,
    backend_capabilities,
    clifford_backend_name,
    depolarizing,
    amplitude_damping,
    list_backends,
    make_noisy_backend,
    register_backend,
    unregister_backend,
)
from repro.sim.noise import NoiseModel
from repro.workloads import detection_rate, ensemble_size_sweep

SEED = 20190622


def bell_program(with_bug: bool = False) -> Program:
    program = Program("bell_bug" if with_bug else "bell")
    q = program.qreg("q", 2)
    program.prep_z(q[0], 0)
    program.prep_z(q[1], 0)
    program.h(q[0])
    if not with_bug:
        program.cnot(q[0], q[1])
    program.assert_entangled([q[0]], [q[1]], label="entangled")
    program.assert_superposition(q, values=(0, 3), label="uniform 00/11")
    program.measure(q, label="m")
    return program


# ---------------------------------------------------------------------------
# RunConfig: validation and normalisation
# ---------------------------------------------------------------------------


class TestRunConfigValidation:
    def test_defaults(self):
        config = RunConfig()
        assert config.ensemble_size == 16
        assert config.mode == "sample"
        assert config.backend is None and config.noise is None
        assert not config.converge

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ensemble_size": 0},
            {"ensemble_size": -4},
            {"mode": "teleport"},
            {"significance": 0.0},
            {"significance": 1.0},
            {"se_cutoff": 0.0},
            {"se_cutoff": 1.5},
            {"max_batches": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RunConfig(**kwargs)

    def test_seed_spellings_normalised(self):
        assert RunConfig(seed=np.int64(7)).seed == 7
        assert isinstance(RunConfig(seed=np.int64(7)).seed, int)
        assert RunConfig(seed=np.random.SeedSequence(99)).seed == 99
        assert RunConfig(seed=None).seed is None

    def test_live_generator_rejected_as_seed(self):
        with pytest.raises(TypeError, match="state, not configuration"):
            RunConfig(seed=np.random.default_rng(0))
        with pytest.raises(TypeError):
            RunConfig(seed=True)

    def test_noise_channel_wrapped_into_model(self):
        config = RunConfig(noise=depolarizing(0.01))
        assert isinstance(config.noise, NoiseModel)
        assert len(config.noise.gate_channels) == 1

    def test_readout_float_normalised(self):
        config = RunConfig(readout_error=0.05)
        assert isinstance(config.readout_error, ReadoutErrorModel)
        assert config.readout_error.p01 == 0.05 and config.readout_error.p10 == 0.05

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RunConfig().ensemble_size = 4

    def test_replace_revalidates(self):
        config = RunConfig(ensemble_size=8)
        assert config.replace(ensemble_size=32).ensemble_size == 32
        assert config.ensemble_size == 8  # original untouched
        with pytest.raises(ValueError):
            config.replace(mode="nope")

    def test_bad_backend_type_rejected(self):
        with pytest.raises(TypeError, match="backend"):
            RunConfig(backend=42)


class TestRunConfigSerialization:
    def test_plain_round_trip(self):
        config = RunConfig(ensemble_size=24, seed=5, mode="rerun", backend="density")
        restored = RunConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored.to_dict() == config.to_dict()

    def test_noise_and_readout_round_trip(self):
        config = RunConfig(
            seed=3,
            noise=NoiseModel.from_channels(
                depolarizing(0.01), readout=ReadoutErrorModel(p01=0.1, p10=0.2)
            ),
            readout_error=ReadoutErrorModel(p01=0.02),
        )
        restored = RunConfig.from_json(config.to_json())
        assert restored.to_dict() == config.to_dict()
        assert restored.noise.gate_channels[0].name == config.noise.gate_channels[0].name
        np.testing.assert_allclose(
            restored.noise.gate_channels[0].operators[0],
            config.noise.gate_channels[0].operators[0],
        )
        assert restored.readout_error.p01 == 0.02

    def test_non_pauli_noise_round_trip(self):
        config = RunConfig(noise=amplitude_damping(0.2))
        restored = RunConfig.from_json(config.to_json())
        assert not restored.noise.is_pauli

    def test_backend_instance_not_serializable(self):
        config = RunConfig(backend=StatevectorBackend())
        with pytest.raises(TypeError, match="registry-name"):
            config.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown RunConfig keys"):
            RunConfig.from_dict({"ensemble_sise": 8})

    def test_from_dict_accepts_legacy_rng_key(self):
        assert RunConfig.from_dict({"rng": 11}).seed == 11


# ---------------------------------------------------------------------------
# Acceptance: one JSON blob pins a seeded run on every backend
# ---------------------------------------------------------------------------


class TestJsonBlobReproducibility:
    @pytest.mark.parametrize(
        "backend", ["statevector", "density", "stabilizer", "auto", "trajectory"]
    )
    def test_blob_reproduces_verdicts_exactly(self, backend):
        blob = RunConfig(ensemble_size=16, seed=123, backend=backend).to_json()
        first = check_program(bell_program(), RunConfig.from_json(blob))
        second = check_program(bell_program(), RunConfig.from_json(blob))
        assert first.p_values() == second.p_values()
        assert [r.passed for r in first.records] == [
            r.passed for r in second.records
        ]
        assert first.to_dict() == second.to_dict()

    def test_blob_matches_legacy_kwargs(self):
        blob = RunConfig(ensemble_size=16, seed=123).to_json()
        modern = check_program(bell_program(), RunConfig.from_json(blob))
        with pytest.warns(DeprecationWarning):
            legacy = check_program(bell_program(), ensemble_size=16, rng=123)
        assert modern.p_values() == legacy.p_values()


# ---------------------------------------------------------------------------
# Session facade
# ---------------------------------------------------------------------------


class TestSession:
    def test_factory_and_overrides(self):
        run = session(RunConfig(seed=1), ensemble_size=8)
        assert isinstance(run, Session)
        assert run.config.ensemble_size == 8 and run.config.seed == 1
        assert session(ensemble_size=4).config.ensemble_size == 4

    def test_check_and_report(self):
        report = session(RunConfig(ensemble_size=16, seed=SEED)).check(bell_program())
        assert report.passed and report.num_breakpoints == 2

    def test_seeded_sessions_reproduce_experiments(self):
        def p_values():
            run = session(RunConfig(ensemble_size=16, seed=SEED))
            return run.check(bell_program()).p_values() + run.check(
                bell_program(with_bug=True)
            ).p_values()

        assert p_values() == p_values()

    def test_raise_on_failure(self):
        run = session(RunConfig(ensemble_size=32, seed=SEED))
        with pytest.raises(AssertionViolation):
            run.check(bell_program(with_bug=True), raise_on_failure=True)

    def test_run_until_converged_attaches_convergence(self):
        run = session(RunConfig(ensemble_size=8, seed=SEED))
        report = run.run_until_converged(bell_program(), se_cutoff=0.05, max_batches=16)
        assert report.convergence
        for row in report.convergence:
            assert row["converged"]
        assert report.records[0].ensemble_size > 8  # ensembles actually grew

    def test_config_converge_flag_drives_check(self):
        run = session(
            RunConfig(ensemble_size=8, seed=SEED, converge=True, se_cutoff=0.05)
        )
        report = run.check(bell_program())
        assert report.convergence

    def test_replace_vs_derive(self):
        run = session(RunConfig(seed=2, ensemble_size=8))
        fresh = run.replace(ensemble_size=16)
        assert fresh.config.ensemble_size == 16
        assert fresh.rng is not run.rng
        shared = run._derive(ensemble_size=16)
        assert shared.rng is run.rng

    def test_sweep_dispatch(self):
        run = session(RunConfig(seed=3, ensemble_size=8))
        rows = run.sweep(
            "ensemble_size",
            bell_program(),
            bell_program(with_bug=True),
            sizes=(8, 16),
            trials=2,
        )
        assert [row["ensemble_size"] for row in rows] == [8, 16]
        with pytest.raises(ValueError, match="unknown sweep"):
            run.sweep("nope")

    def test_checker_shares_session_stream(self):
        run = session(RunConfig(seed=4))
        checker = run.checker(bell_program())
        assert checker.rng is run.rng
        assert checker.executor.rng is run.rng


class TestCheckProgramConverge:
    def test_one_shot_converge_path(self):
        report = check_program(
            bell_program(),
            RunConfig(ensemble_size=8, seed=SEED),
            converge=True,
            se_cutoff=0.05,
            max_batches=16,
        )
        assert report.convergence and report.passed
        assert report.records[0].ensemble_size > 8

    def test_positional_int_still_means_ensemble_size(self):
        with pytest.warns(DeprecationWarning):
            report = check_program(bell_program(), 8, rng=1)
        assert report.ensemble_size == 8

    def test_convergence_knob_implies_converge(self):
        # Passing se_cutoff/max_batches without converge=True must not be
        # silently dropped — it states convergence intent.
        report = check_program(
            bell_program(), RunConfig(ensemble_size=8, seed=SEED), se_cutoff=0.05
        )
        assert report.convergence
        report = check_program(
            bell_program(), RunConfig(ensemble_size=8, seed=SEED), max_batches=2
        )
        assert report.convergence
        # An explicit converge=False still wins.
        report = check_program(
            bell_program(),
            RunConfig(ensemble_size=8, seed=SEED),
            converge=False,
            se_cutoff=0.05,
        )
        assert not report.convergence


# ---------------------------------------------------------------------------
# Deprecation shims: every legacy kwarg spelling warns but still works
# ---------------------------------------------------------------------------


LEGACY_CHECKER_KWARGS = [
    {"ensemble_size": 8},
    {"significance": 0.01},
    {"rng": 7},
    {"rng": None},  # explicit None still counts as the legacy spelling
    {"mode": "rerun"},
    {"backend": "statevector"},
    {"readout_error": ReadoutErrorModel(p01=0.01, p10=0.01)},
    {"noise": depolarizing(0.001)},
]


class TestDeprecationShims:
    @pytest.mark.parametrize("kwargs", LEGACY_CHECKER_KWARGS)
    def test_checker_legacy_kwargs_warn(self, kwargs):
        with pytest.warns(DeprecationWarning, match="StatisticalAssertionChecker"):
            checker = StatisticalAssertionChecker(bell_program(), **kwargs)
        assert checker.run().num_breakpoints == 2

    @pytest.mark.parametrize("kwargs", LEGACY_CHECKER_KWARGS)
    def test_check_program_legacy_kwargs_warn(self, kwargs):
        with pytest.warns(DeprecationWarning, match="check_program"):
            report = check_program(bell_program(), **kwargs)
        assert report.num_breakpoints == 2

    def test_sweep_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="detection_rate"):
            rate = detection_rate(
                bell_program(with_bug=True), ensemble_size=16, trials=2, rng=1
            )
        assert 0.0 <= rate <= 1.0
        with pytest.warns(DeprecationWarning, match="ensemble_size_sweep"):
            ensemble_size_sweep(
                bell_program(),
                bell_program(with_bug=True),
                sizes=(8,),
                trials=1,
                rng=2,
            )

    def test_config_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            check_program(bell_program(), RunConfig(ensemble_size=8, seed=1))
            detection_rate(
                bell_program(with_bug=True),
                config=RunConfig(ensemble_size=8, seed=1),
                trials=2,
            )
            session(RunConfig(seed=1)).check(bell_program())

    def test_legacy_generator_rng_still_shares_stream(self):
        generator = np.random.default_rng(SEED)
        with pytest.warns(DeprecationWarning):
            checker = StatisticalAssertionChecker(bell_program(), rng=generator)
        assert checker.rng is generator

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            check_program(bell_program(), ensemble_sise=8)

    def test_legacy_rng_seed_wins_over_session_stream(self):
        # An explicit legacy rng seed must reseed the run, not be silently
        # overwritten by the session's shared stream.
        run = session(RunConfig(ensemble_size=16, seed=0))

        def rate():
            with pytest.warns(DeprecationWarning):
                return detection_rate(
                    bell_program(with_bug=True), trials=3, rng=3, session=run
                )

        assert rate() == rate()  # fresh seeded stream per call, not shared


# ---------------------------------------------------------------------------
# Executor config path
# ---------------------------------------------------------------------------


class TestExecutorConfig:
    def test_from_config(self):
        config = RunConfig(ensemble_size=12, seed=9, mode="rerun", backend="density")
        executor = BreakpointExecutor.from_config(config)
        assert executor.ensemble_size == 12
        assert executor.mode == "rerun"
        assert executor.backend == "density"
        assert executor.config is config

    def test_kwargs_override_config(self):
        executor = BreakpointExecutor(RunConfig(ensemble_size=4), ensemble_size=32)
        assert executor.ensemble_size == 32

    def test_noise_model_readout_adopted_through_config(self):
        model = NoiseModel(
            gate_channels=(depolarizing(0.01),),
            readout=ReadoutErrorModel(p01=0.2, p10=0.2),
        )
        executor = BreakpointExecutor.from_config(RunConfig(noise=model))
        assert executor.readout_error.p01 == 0.2


# ---------------------------------------------------------------------------
# Registry: third-party backends route by name and by "auto" capabilities
# ---------------------------------------------------------------------------


class ToyBackend(StatevectorBackend):
    """A 'third-party' backend: statevector mechanics under a new name."""

    name = "toy"
    instances = 0

    def __init__(self, *args, **kwargs):
        type(self).instances += 1
        super().__init__(*args, **kwargs)


class TestRegistry:
    def test_builtins_listed_with_capabilities(self):
        names = list_backends()
        for name in ("statevector", "density", "stabilizer", "auto", "trajectory"):
            assert name in names
        assert backend_capabilities("stabilizer").clifford_native
        assert "kraus" in backend_capabilities("density").gate_noise
        assert backend_capabilities("trajectory").batched
        assert not backend_capabilities("statevector").gate_noise

    def test_runtime_backend_routed_by_name_and_auto_capabilities(self):
        register_backend(
            "toy",
            ToyBackend,
            BackendCapabilities(clifford_native=True, dense=True, priority=99),
        )
        try:
            # Routed by name through the whole checker pipeline.
            before = ToyBackend.instances
            report = check_program(
                bell_program(), RunConfig(ensemble_size=8, seed=1, backend="toy")
            )
            assert report.passed and ToyBackend.instances > before

            # Routed by capabilities: "auto" prefers the highest-priority
            # Clifford-native backend for an all-Clifford plan.  Drop the
            # plan cache first: "auto" resolves to the same "toy" family, and
            # a snapshot-served run would (correctly) build no new instance.
            default_plan_cache().clear()
            assert clifford_backend_name() == "toy"
            before = ToyBackend.instances
            check_program(
                bell_program(), RunConfig(ensemble_size=8, seed=1, backend="auto")
            )
            assert ToyBackend.instances > before
        finally:
            unregister_backend("toy")
        assert clifford_backend_name() == "stabilizer"
        with pytest.raises(KeyError, match="unknown backend"):
            check_program(bell_program(), RunConfig(backend="toy"))

    def test_registering_native_noise_requires_factory(self):
        with pytest.raises(ValueError, match="noisy_factory"):
            register_backend(
                "bad", ToyBackend, BackendCapabilities(gate_noise={"pauli"})
            )

    def test_make_noisy_backend_rejects_non_pauli_on_pauli_only(self):
        model = NoiseModel.from_channels(amplitude_damping(0.1))
        for name in ("trajectory", "stabilizer"):
            with pytest.raises(ValueError, match="Pauli"):
                make_noisy_backend(name, model)

    def test_capability_flags_validated(self):
        with pytest.raises(ValueError, match="gate-noise families"):
            BackendCapabilities(gate_noise={"thermal"})


# ---------------------------------------------------------------------------
# Sweep-builder semantics: stochastic builders resample per trial
# ---------------------------------------------------------------------------


class TestSweepBuilderSemantics:
    def test_builder_invoked_once_per_trial(self):
        calls = []

        def build():
            calls.append(1)
            return bell_program()

        detection_rate(build, config=RunConfig(ensemble_size=8, seed=0), trials=4)
        assert len(calls) == 4

    def test_stochastic_builder_resamples(self):
        # A builder alternating correct/buggy programs must yield a failure
        # fraction strictly between 0 and 1 — the old build-once behaviour
        # froze the first draw and returned 0.0 or 1.0.
        state = {"count": 0}

        def build():
            state["count"] += 1
            return bell_program(with_bug=state["count"] % 2 == 0)

        rate = detection_rate(
            build, config=RunConfig(ensemble_size=64, seed=SEED), trials=4
        )
        assert rate == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# DebugReport serialization
# ---------------------------------------------------------------------------


class TestReportSerialization:
    def test_round_trip_fixed_point(self):
        report = check_program(bell_program(), RunConfig(ensemble_size=16, seed=5))
        data = report.to_dict()
        json.dumps(data)  # pure JSON, no numpy leakage
        restored = DebugReport.from_dict(data)
        assert restored.to_dict() == data
        assert restored.passed == report.passed
        assert restored.p_values() == report.p_values()

    def test_round_trip_with_convergence_and_failures(self):
        report = check_program(
            bell_program(with_bug=True),
            RunConfig(ensemble_size=16, seed=5, converge=True, se_cutoff=0.05),
        )
        assert report.convergence
        restored = DebugReport.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()
        assert [r.passed for r in restored.records] == [
            r.passed for r in report.records
        ]
        assert restored.convergence == report.to_dict()["convergence"]

    def test_consistent_with_runconfig_serialization(self):
        # One config blob + one report blob fully describe a run over the wire.
        config = RunConfig(ensemble_size=16, seed=8, backend="density")
        report = check_program(bell_program(), config)
        wire = json.dumps({"config": config.to_dict(), "report": report.to_dict()})
        payload = json.loads(wire)
        replayed = check_program(bell_program(), RunConfig.from_dict(payload["config"]))
        assert replayed.to_dict() == payload["report"]
