"""Tests for adiabatic ground-state preparation of H2."""

import numpy as np
import pytest

from repro.chemistry import (
    ELECTRON_ASSIGNMENTS,
    build_diagonal_hamiltonian,
    build_occupation_hamiltonian,
    prepare_ground_state_adiabatically,
    schedule_convergence,
)
from repro.chemistry.adiabatic import append_adiabatic_evolution
from repro.chemistry.h2 import assignment_to_basis_state
from repro.chemistry.pauli import PauliString, PauliSum
from repro.lang import Program


class TestInitialHamiltonians:
    def test_occupation_hamiltonian_ground_state(self):
        occupation = ELECTRON_ASSIGNMENTS["G"]
        hamiltonian = build_occupation_hamiltonian(occupation, penalty=2.0)
        diagonal = np.real(np.diag(hamiltonian.to_matrix()))
        ground_index = int(np.argmin(diagonal))
        assert ground_index == assignment_to_basis_state(occupation)
        assert diagonal[ground_index] == pytest.approx(0.0)
        # The gap equals the penalty.
        assert sorted(diagonal)[1] == pytest.approx(2.0)

    def test_occupation_hamiltonian_validation(self):
        with pytest.raises(ValueError):
            build_occupation_hamiltonian((0, 2, 1))

    def test_diagonal_hamiltonian_is_diagonal_and_shares_hf_ground(self, h2_hamiltonian):
        diagonal_part = build_diagonal_hamiltonian(h2_hamiltonian)
        matrix = diagonal_part.to_matrix()
        assert np.allclose(matrix, np.diag(np.diag(matrix)))
        hf = assignment_to_basis_state(ELECTRON_ASSIGNMENTS["G"])
        assert int(np.argmin(np.real(np.diag(matrix)))) == hf

    def test_diagonal_hamiltonian_requires_diagonal_terms(self):
        purely_off_diagonal = PauliSum([PauliString.from_label("XX")])
        with pytest.raises(ValueError):
            build_diagonal_hamiltonian(purely_off_diagonal)


class TestAdiabaticPreparation:
    def test_slow_schedule_reaches_ground_state(self, h2_hamiltonian):
        result = prepare_ground_state_adiabatically(
            h2_hamiltonian, total_time=8.0, num_steps=32
        )
        assert result.ground_state_overlap > 0.99
        assert result.energy_error < 0.02
        assert result.as_row()["steps"] == 32

    def test_longer_schedules_do_not_get_worse(self, h2_hamiltonian):
        results = schedule_convergence(
            total_times=(0.5, 4.0, 12.0), steps_per_unit_time=4, target_hamiltonian=h2_hamiltonian
        )
        overlaps = [r.ground_state_overlap for r in results]
        assert overlaps[-1] >= overlaps[0]
        assert overlaps[-1] > 0.99

    def test_occupation_mode_runs_and_reports(self, h2_hamiltonian):
        result = prepare_ground_state_adiabatically(
            h2_hamiltonian,
            total_time=1.0,
            num_steps=8,
            initial_mode="occupation",
        )
        assert 0.0 <= result.ground_state_overlap <= 1.0

    def test_invalid_mode_and_parameters(self, h2_hamiltonian):
        with pytest.raises(ValueError):
            prepare_ground_state_adiabatically(h2_hamiltonian, initial_mode="linear")
        program = Program()
        q = program.qreg("q", 4)
        with pytest.raises(ValueError):
            append_adiabatic_evolution(
                program,
                build_diagonal_hamiltonian(h2_hamiltonian),
                h2_hamiltonian,
                list(q),
                total_time=0.0,
                num_steps=4,
            )
        with pytest.raises(ValueError):
            append_adiabatic_evolution(
                program,
                build_diagonal_hamiltonian(h2_hamiltonian),
                h2_hamiltonian,
                list(q),
                total_time=1.0,
                num_steps=0,
            )

    def test_preparation_conserves_particle_number(self, h2_hamiltonian):
        program = Program("adiabatic")
        system = program.qreg("q", 4)
        for index, bit in enumerate(ELECTRON_ASSIGNMENTS["G"]):
            if bit:
                program.x(system[index])
        append_adiabatic_evolution(
            program,
            build_diagonal_hamiltonian(h2_hamiltonian),
            h2_hamiltonian,
            list(system),
            total_time=2.0,
            num_steps=8,
        )
        state = program.simulate()
        for basis, amplitude in state.to_dict(threshold=1e-8).items():
            assert bin(basis).count("1") == 2
