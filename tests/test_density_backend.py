"""Tests for the density-matrix backend and the Kraus noise-channel layer.

Three cross-validation axes:

* noiseless density == statevector probabilities (to 1e-10) on both the pure
  fast path and the forced-dense representation;
* the backend's partial trace == :mod:`repro.sim.density`'s exact
  reduced-density-matrix ground truth;
* the checker produces verdicts identical to the statevector backend on every
  bug-catalog scenario in the noiseless limit (fixed seed).
"""

import numpy as np
import pytest

from repro.bugs import BUG_SCENARIOS
from repro.compiler import BreakpointExecutor, build_execution_plan
from repro.core import check_program
from repro.lang import Program
from repro.sim import (
    DensityMatrix,
    DensityMatrixBackend,
    NoiseModel,
    ReadoutErrorModel,
    Statevector,
    StatevectorBackend,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    gates,
    make_backend,
    phase_flip,
    reduced_density_matrix,
)

SEED = 20190622


def _bell_program() -> Program:
    program = Program("bell")
    q = program.qreg("q", 2)
    program.h(q[0])
    program.cnot(q[0], q[1])
    program.assert_entangled([q[0]], [q[1]], label="pair")
    return program


def _mixed_workload(backend) -> None:
    """A small circuit touching 1q, parameterised and controlled gates."""
    backend.apply_gate("h", [0])
    backend.apply_controlled(gates.X, [0], [1])
    backend.apply_gate("t", [2])
    backend.apply_gate("ry", [2], 0.7)
    backend.apply_controlled(gates.rz(0.3), [2], [0])
    backend.apply_matrix(gates.SWAP, [1, 2])


class TestRegistryAndContract:
    def test_registered_under_density(self):
        backend = make_backend("density")
        assert isinstance(backend, DensityMatrixBackend)
        assert backend.name == "density"
        assert backend.supports_readout_noise

    def test_requires_initialisation(self):
        backend = DensityMatrixBackend()
        with pytest.raises(RuntimeError):
            backend.probabilities()

    def test_initialize_from_statevector_copies(self):
        initial = Statevector.from_label("10")
        backend = DensityMatrixBackend().initialize(2, initial_state=initial)
        assert backend.probabilities()[2] == pytest.approx(1.0)
        backend.apply_gate("x", [0])
        assert initial.probabilities()[2] == pytest.approx(1.0)

    def test_initialize_wrong_size_raises(self):
        with pytest.raises(ValueError):
            DensityMatrixBackend().initialize(3, initial_state=Statevector(2))

    def test_gate_counter(self):
        backend = DensityMatrixBackend(2)
        backend.apply_gate("h", [0])
        backend.apply_controlled(gates.X, [0], [1])
        backend.apply_matrix(gates.SWAP, [0, 1])
        assert backend.gates_applied == 3
        backend.densify()
        backend.apply_gate("x", [0])
        assert backend.gates_applied == 4

    def test_dense_path_validates_operands(self):
        backend = DensityMatrixBackend(2).densify()
        with pytest.raises(ValueError):
            backend.apply_matrix(gates.X, [5])
        with pytest.raises(ValueError):
            backend.apply_matrix(gates.SWAP, [0])
        with pytest.raises(ValueError):
            backend.apply_controlled(gates.X, [0], [0])

    def test_snapshot_restore_roundtrip_pure(self, rng):
        backend = DensityMatrixBackend(2)
        backend.apply_gate("h", [0])
        backend.apply_controlled(gates.X, [0], [1])
        before = backend.probabilities().copy()
        token = backend.snapshot()
        backend.measure([0, 1], rng=rng)
        assert np.max(backend.probabilities()) == pytest.approx(1.0)
        backend.restore(token)
        assert np.allclose(backend.probabilities(), before)
        backend.measure([0, 1], rng=rng)
        backend.restore(token)  # the token survives multiple restores
        assert np.allclose(backend.probabilities(), before)

    def test_snapshot_restore_crosses_the_densify_boundary(self):
        backend = DensityMatrixBackend(2)
        backend.apply_gate("h", [0])
        token = backend.snapshot()
        backend.apply_channel(bit_flip(0.5), [0])
        assert not backend.is_pure_representation
        dense_token = backend.snapshot()
        backend.restore(token)
        assert backend.is_pure_representation
        assert np.allclose(backend.probabilities([0]), [0.5, 0.5])
        backend.restore(dense_token)
        assert not backend.is_pure_representation

    def test_restore_rejects_foreign_tokens(self):
        backend = DensityMatrixBackend(2)
        with pytest.raises(ValueError):
            backend.restore(np.zeros(4, dtype=complex))
        with pytest.raises(ValueError):
            backend.restore(("pure", np.zeros(2, dtype=complex)))
        with pytest.raises(ValueError):
            backend.restore(("rho", np.zeros((2, 2), dtype=complex)))

    def test_sample_does_not_collapse(self, rng):
        backend = DensityMatrixBackend(2).densify()
        backend.apply_gate("h", [0])
        probs = backend.probabilities().copy()
        outcomes = backend.sample([0], shots=64, rng=rng)
        assert set(int(v) for v in outcomes) == {0, 1}
        assert np.allclose(backend.probabilities(), probs)

    def test_measure_collapses_dense_state(self, rng):
        backend = DensityMatrixBackend(2).densify()
        backend.apply_gate("h", [0])
        backend.apply_controlled(gates.X, [0], [1])
        outcome = backend.measure([0, 1], rng=rng)
        assert outcome in (0b00, 0b11)  # Bell state: perfectly correlated
        assert backend.probabilities()[outcome] == pytest.approx(1.0)
        assert backend.purity() == pytest.approx(1.0)


class TestNoiselessCrossValidation:
    """Noiseless density == statevector probabilities to 1e-10."""

    @pytest.mark.parametrize("dense", [False, True])
    def test_probabilities_match_statevector(self, dense):
        reference = StatevectorBackend(3)
        backend = DensityMatrixBackend(3)
        if dense:
            backend.densify()
        _mixed_workload(reference)
        _mixed_workload(backend)
        assert np.allclose(
            backend.probabilities(), reference.probabilities(), atol=1e-10
        )
        assert np.allclose(
            backend.probabilities([2, 0]),
            reference.probabilities([2, 0]),
            atol=1e-10,
        )

    def test_program_simulate_routes_through_density(self):
        program = Program()
        q = program.qreg("q", 2)
        program.h(q[0])
        program.cnot(q[0], q[1])
        state = program.simulate(backend="density")
        assert np.allclose(state.probabilities(), [0.5, 0, 0, 0.5], atol=1e-10)

    def test_unitary_through_density_backend(self):
        program = Program()
        q = program.qreg("q", 1)
        program.h(q[0])
        assert np.allclose(program.unitary(backend="density"), gates.H, atol=1e-10)

    def test_dense_unitary_evolution_matches_matmul(self, rng):
        """U rho U^dagger via the two-sided kernel == explicit matmul."""
        dim = 8
        random = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
        unitary = np.linalg.qr(random)[0]
        amplitudes = rng.normal(size=dim) + 1j * rng.normal(size=dim)
        amplitudes /= np.linalg.norm(amplitudes)
        backend = DensityMatrixBackend().initialize(
            3, initial_state=Statevector(3, amplitudes)
        )
        backend.densify()
        backend.apply_matrix(unitary, [0, 1, 2])
        rho = np.outer(amplitudes, amplitudes.conj())
        expected = unitary @ rho @ unitary.conj().T
        assert np.allclose(backend.to_density_matrix().data, expected, atol=1e-12)

    def test_dense_controlled_matches_dense_controlled_unitary(self, rng):
        amplitudes = rng.normal(size=8) + 1j * rng.normal(size=8)
        amplitudes /= np.linalg.norm(amplitudes)
        base = np.linalg.qr(
            rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        )[0]
        backend = DensityMatrixBackend().initialize(
            3, initial_state=Statevector(3, amplitudes)
        )
        backend.densify()
        backend.apply_controlled(base, [2, 0], [1])
        reference = Statevector(3, amplitudes.copy())
        reference.apply_controlled(base, [2, 0], [1])
        expected = np.outer(reference.data, reference.data.conj())
        assert np.allclose(backend.to_density_matrix().data, expected, atol=1e-12)

    def test_to_statevector_of_pure_dense_state(self):
        backend = DensityMatrixBackend(2).densify()
        backend.apply_gate("h", [0])
        backend.apply_controlled(gates.X, [0], [1])
        recovered = backend.to_statevector()
        bell = Statevector(2)
        bell.apply_matrix(gates.H, [0]).apply_controlled(gates.X, [0], [1])
        assert recovered.equiv(bell, atol=1e-9)

    def test_to_statevector_raises_on_mixed_state(self):
        backend = DensityMatrixBackend(1)
        backend.apply_channel(bit_flip(0.5), [0])
        with pytest.raises(ValueError, match="mixed"):
            backend.to_statevector()


class TestReducedDensityMatrixGroundTruth:
    """Backend partial trace == repro.sim.density exact ground truth."""

    @pytest.mark.parametrize("keep", [[0], [1], [2], [0, 2], [2, 0], [0, 1, 2]])
    @pytest.mark.parametrize("dense", [False, True])
    def test_matches_pure_state_partial_trace(self, keep, dense):
        backend = DensityMatrixBackend(3)
        if dense:
            backend.densify()
        _mixed_workload(backend)
        reference_state = Statevector(3)
        _mixed_workload(StatevectorBackendView(reference_state))
        truth = reduced_density_matrix(reference_state, keep)
        ours = backend.reduced_density_matrix(keep)
        assert np.allclose(ours.data, truth.data, atol=1e-10)
        assert ours.is_valid(atol=1e-8)

    def test_mixed_state_partial_trace_traces_to_identity_marginal(self):
        backend = DensityMatrixBackend(2)
        backend.apply_gate("h", [0])
        backend.apply_controlled(gates.X, [0], [1])
        backend.apply_channel(depolarizing(1.0), [0])
        reduced = backend.reduced_density_matrix([0])
        # Full depolarisation leaves the maximally mixed marginal.
        assert np.allclose(reduced.data, np.eye(2) / 2, atol=1e-10)

    def test_validates_keep_list(self):
        backend = DensityMatrixBackend(2)
        with pytest.raises(ValueError):
            backend.reduced_density_matrix([0, 0])
        with pytest.raises(ValueError):
            backend.reduced_density_matrix([4])


class StatevectorBackendView:
    """Adapter so _mixed_workload can drive a bare Statevector."""

    def __init__(self, state: Statevector):
        self._state = state

    def apply_gate(self, name, qubits, *params):
        self._state.apply_gate(name, qubits, *params)

    def apply_matrix(self, matrix, qubits):
        self._state.apply_matrix(matrix, qubits)

    def apply_controlled(self, matrix, controls, targets):
        self._state.apply_controlled(matrix, controls, targets)


class TestKrausChannels:
    def test_completeness_is_enforced(self):
        from repro.sim import KrausChannel

        with pytest.raises(ValueError, match="trace preserving"):
            KrausChannel(name="leaky", operators=(0.5 * gates.I,))
        with pytest.raises(ValueError):
            KrausChannel(name="empty", operators=())

    def test_probability_validation(self):
        for factory in (bit_flip, phase_flip, bit_phase_flip, depolarizing,
                        amplitude_damping):
            with pytest.raises(ValueError):
                factory(1.5)

    def test_operators_are_copied_and_frozen(self):
        """Caller-side mutation must not invalidate the completeness check."""
        from repro.sim import KrausChannel

        source = np.eye(2, dtype=complex)
        channel = KrausChannel(name="id", operators=(source,))
        source[0, 0] = 5.0  # the channel keeps its own validated copy
        assert np.allclose(channel.operators[0], np.eye(2))
        with pytest.raises((ValueError, RuntimeError)):
            channel.operators[0][0, 0] = 5.0

    def test_amplitude_damping_relaxes_excited_state(self):
        backend = DensityMatrixBackend(1)
        backend.apply_gate("x", [0])
        backend.apply_channel(amplitude_damping(0.3), [0])
        assert np.allclose(backend.probabilities(), [0.3, 0.7], atol=1e-12)

    def test_amplitude_damping_fixes_ground_state(self):
        backend = DensityMatrixBackend(1)
        backend.apply_channel(amplitude_damping(0.9), [0])
        assert np.allclose(backend.probabilities(), [1.0, 0.0], atol=1e-12)

    def test_depolarizing_mixes_towards_identity(self):
        backend = DensityMatrixBackend(1)
        backend.apply_channel(depolarizing(0.3), [0])
        # X and Y errors (p/3 each) move |0> to |1>.
        assert np.allclose(backend.probabilities(), [0.8, 0.2], atol=1e-12)
        # (1-p) rho + p/3 sum P rho P = (1 - 4p/3) rho + (2p/3) I: the map is
        # completely depolarising at p = 3/4.
        full = DensityMatrixBackend(1)
        full.apply_gate("h", [0])
        full.apply_channel(depolarizing(0.75), [0])
        assert np.allclose(full.to_density_matrix().data, np.eye(2) / 2, atol=1e-12)

    def test_bit_and_phase_flips(self):
        backend = DensityMatrixBackend(1)
        backend.apply_channel(bit_flip(0.25), [0])
        assert np.allclose(backend.probabilities(), [0.75, 0.25], atol=1e-12)
        # Phase flip leaves populations alone but kills coherences.
        backend = DensityMatrixBackend(1)
        backend.apply_gate("h", [0])
        backend.apply_channel(phase_flip(0.5), [0])
        rho = backend.to_density_matrix().data
        assert np.allclose(np.diag(rho), [0.5, 0.5], atol=1e-12)
        assert abs(rho[0, 1]) == pytest.approx(0.0, abs=1e-12)

    def test_channel_matches_dense_reference_application(self, rng):
        channel = amplitude_damping(0.37)
        amplitudes = rng.normal(size=4) + 1j * rng.normal(size=4)
        amplitudes /= np.linalg.norm(amplitudes)
        backend = DensityMatrixBackend().initialize(
            2, initial_state=Statevector(2, amplitudes)
        )
        backend.apply_channel(channel, [1])
        rho = np.outer(amplitudes, amplitudes.conj())
        # Reference: lift the 1q Kraus operators to qubit 1 explicitly.
        expected = sum(
            np.kron(op, np.eye(2)) @ rho @ np.kron(op, np.eye(2)).conj().T
            for op in channel.operators
        )
        assert np.allclose(backend.to_density_matrix().data, expected, atol=1e-12)

    def test_purity_decreases_under_noise(self):
        backend = DensityMatrixBackend(1)
        backend.apply_gate("h", [0])
        assert backend.purity() == pytest.approx(1.0)
        backend.apply_channel(depolarizing(0.5), [0])
        assert backend.purity() < 1.0
        assert backend.to_density_matrix().is_valid(atol=1e-9)

    def test_channel_arity_checked(self):
        backend = DensityMatrixBackend(2)
        with pytest.raises(ValueError, match="acts on"):
            backend.apply_channel(bit_flip(0.1), [0, 1])


class TestNoiseModel:
    def test_gate_noise_applied_to_touched_qubits(self):
        model = NoiseModel.from_channels(bit_flip(0.1))
        backend = DensityMatrixBackend(2, noise=model)
        backend.apply_gate("x", [0])
        assert not backend.is_pure_representation
        # Qubit 0 saw X then the flip channel; qubit 1 was untouched.
        assert np.allclose(backend.probabilities([0]), [0.1, 0.9], atol=1e-12)
        assert np.allclose(backend.probabilities([1]), [1.0, 0.0], atol=1e-12)

    def test_controlled_gates_decohere_controls_too(self):
        model = NoiseModel.from_channels(phase_flip(0.5))
        backend = DensityMatrixBackend(2, noise=model)
        backend.apply_gate("h", [0])  # noise on qubit 0 kills its coherence
        rho = backend.reduced_density_matrix([0]).data
        assert abs(rho[0, 1]) == pytest.approx(0.0, abs=1e-12)

    def test_accepts_two_qubit_rejects_wider_gate_channels(self):
        from repro.sim import KrausChannel

        two_qubit_identity = KrausChannel(
            name="id2", operators=(np.eye(4, dtype=complex),)
        )
        model = NoiseModel(gate_channels=(two_qubit_identity,))
        assert model.gate_channels[0].num_qubits == 2
        three_qubit_identity = KrausChannel(
            name="id3", operators=(np.eye(8, dtype=complex),)
        )
        with pytest.raises(ValueError, match="one or two"):
            NoiseModel(gate_channels=(three_qubit_identity,))

    def test_noise_model_readout_seeds_backend(self):
        model = NoiseModel(readout=ReadoutErrorModel(p01=0.25))
        backend = DensityMatrixBackend(1, noise=model)
        assert np.allclose(backend.readout_probabilities(), [0.75, 0.25])

    def test_ideal_flag(self):
        assert NoiseModel().is_ideal
        assert not NoiseModel.from_channels(bit_flip(0.1)).is_ideal
        assert not NoiseModel(readout=ReadoutErrorModel(p01=0.1)).is_ideal


class TestNativeReadoutPath:
    def test_readout_probabilities_are_exact_and_state_untouched(self):
        backend = DensityMatrixBackend(
            1, readout_error=ReadoutErrorModel(p01=0.2, p10=0.1)
        )
        assert np.allclose(backend.probabilities(), [1.0, 0.0])
        assert np.allclose(backend.readout_probabilities(), [0.8, 0.2])
        backend.apply_gate("x", [0])
        assert np.allclose(backend.readout_probabilities(), [0.1, 0.9])
        assert backend.is_pure_representation  # readout noise never densifies

    def test_sample_draws_from_noisy_distribution(self):
        backend = DensityMatrixBackend(
            1, readout_error=ReadoutErrorModel(p01=1.0, p10=0.0)
        )
        outcomes = backend.sample([0], shots=32, rng=SEED)
        assert all(int(v) == 1 for v in outcomes)

    def test_measure_stays_ideal_under_readout_noise(self):
        """Readout error is a sampling-path effect: projective collapse (the
        thing mid-circuit PrepZ resets rely on) reports the true outcome on
        every backend."""
        backend = DensityMatrixBackend(
            1, readout_error=ReadoutErrorModel(p01=1.0, p10=1.0)
        )
        outcome = backend.measure([0], rng=SEED)
        assert outcome == 0
        assert backend.probabilities()[0] == pytest.approx(1.0)
        backend.densify()
        assert backend.measure([0], rng=SEED) == 0

    def test_rerun_mode_keeps_classical_corruption_semantics(self):
        """In rerun mode the density backend matches the statevector path:
        per-member collapse then classical corruption of the reports."""
        program = Program("classical")
        q = program.qreg("q", 1)
        program.prep_z(q[0], 0)
        program.assert_classical([q[0]], 0, label="zero")
        model = ReadoutErrorModel(p01=1.0, p10=0.0)
        results = {}
        for backend in ("statevector", "density"):
            executor = BreakpointExecutor(
                ensemble_size=8, rng=SEED, mode="rerun",
                readout_error=model, backend=backend,
            )
            (measurements,) = executor.run_plan(build_execution_plan(program))
            results[backend] = measurements.joint.samples
        assert results["statevector"] == results["density"] == [1] * 8

    def test_executor_installs_readout_model_once(self):
        program = Program("classical")
        q = program.qreg("q", 1)
        program.prep_z(q[0], 0)
        program.assert_classical([q[0]], 0, label="zero")
        executor = BreakpointExecutor(
            ensemble_size=16,
            rng=SEED,
            readout_error=ReadoutErrorModel(p01=1.0, p10=0.0),
            backend="density",
        )
        (measurements,) = executor.run_plan(build_execution_plan(program))
        # A deterministic full flip: every member reads 1, exactly once —
        # double corruption (native + executor) would read 0 again.
        assert measurements.joint.samples == [1] * 16

    def test_executor_restores_callers_backend_readout_model(self):
        """A shared backend instance must not keep an executor's readout
        noise after the run: a later ideal-readout executor on the same
        instance has to see ideal distributions again."""
        program = _bell_program()
        plan = build_execution_plan(program)
        shared = DensityMatrixBackend()
        noisy = BreakpointExecutor(
            ensemble_size=8,
            rng=SEED,
            readout_error=ReadoutErrorModel(p01=0.4, p10=0.4),
            backend=shared,
        )
        noisy.run_plan(plan)
        assert shared.readout_error.is_ideal  # installation was undone
        ideal = BreakpointExecutor(ensemble_size=4000, rng=SEED, backend=shared)
        (measurements,) = ideal.run_plan(plan)
        distribution = measurements.joint.empirical_distribution()
        assert distribution[1] + distribution[2] == pytest.approx(0.0)

    def test_executor_preserves_user_configured_backend_noise(self):
        """The executor's installation must put back the *user's* model, not
        clobber it with the ideal default."""
        program = _bell_program()
        plan = build_execution_plan(program)
        users_model = ReadoutErrorModel(p01=0.25, p10=0.0)
        shared = DensityMatrixBackend(readout_error=users_model)
        executor = BreakpointExecutor(
            ensemble_size=8,
            rng=SEED,
            readout_error=ReadoutErrorModel(p01=0.4, p10=0.4),
            backend=shared,
        )
        executor.run_plan(plan)
        assert shared.readout_error == users_model

    def test_native_and_corrupting_paths_agree_statistically(self):
        """Exact density readout vs statevector per-sample corruption."""
        program = _bell_program()
        model = ReadoutErrorModel(p01=0.1, p10=0.1)
        shots = 4000

        native = BreakpointExecutor(
            ensemble_size=shots, rng=SEED, readout_error=model, backend="density"
        )
        (native_measurements,) = native.run_plan(build_execution_plan(program))

        corrupting = BreakpointExecutor(
            ensemble_size=shots, rng=SEED, readout_error=model, backend="statevector"
        )
        (corrupt_measurements,) = corrupting.run_plan(build_execution_plan(program))

        native_dist = native_measurements.joint.empirical_distribution()
        corrupt_dist = corrupt_measurements.joint.empirical_distribution()
        assert np.allclose(native_dist, corrupt_dist, atol=0.03)
        # And both match the analytic noisy Bell distribution.
        analytic = model.apply_to_distribution(
            np.array([0.5, 0.0, 0.0, 0.5]), num_bits=2
        )
        assert np.allclose(native_dist, analytic, atol=0.03)


class TestCheckerIntegration:
    """Acceptance criterion: identical verdicts on every bug-catalog scenario."""

    @pytest.mark.parametrize("name", sorted(BUG_SCENARIOS))
    @pytest.mark.parametrize("variant", ["correct", "buggy"])
    def test_noiseless_verdicts_match_statevector(self, name, variant):
        scenario = BUG_SCENARIOS[name]
        build = scenario.build_correct if variant == "correct" else scenario.build_buggy
        program = build()
        ensemble_size = scenario.ensemble_size or 16
        statevector_report = check_program(
            program, ensemble_size=ensemble_size, rng=SEED, backend="statevector"
        )
        density_report = check_program(
            program, ensemble_size=ensemble_size, rng=SEED, backend="density"
        )
        assert [r.outcome.passed for r in statevector_report.records] == [
            r.outcome.passed for r in density_report.records
        ]
        assert statevector_report.passed == density_report.passed

    def test_incremental_work_bound_holds_on_density(self):
        program = Program("chain")
        q = program.qreg("q", 2)
        for _ in range(5):
            for _ in range(4):
                program.h(q[0])
                program.cnot(q[0], q[1])
            program.assert_superposition([q[0]], label="block")
        plan = build_execution_plan(program)
        executor = BreakpointExecutor(ensemble_size=8, rng=SEED, backend="density")
        executor.run_plan(plan)
        assert executor.gates_applied == plan.total_gates == 40

    def test_noise_sweep_through_single_plan_walk(self):
        """One density walk per error rate yields noisy verdicts end to end."""
        program = _bell_program()
        for rate in (0.0, 0.01, 0.05):
            report = check_program(
                program,
                ensemble_size=32,
                rng=SEED,
                backend="density",
                readout_error=ReadoutErrorModel(p01=rate, p10=rate),
            )
            assert len(report.records) == 1

    def test_gate_noise_backend_factory_through_checker(self):
        """A noisy-machine factory plugs into the checker via backend=."""
        program = _bell_program()
        model = NoiseModel.from_channels(depolarizing(0.4))
        report = check_program(
            program,
            ensemble_size=64,
            rng=SEED,
            backend=lambda: DensityMatrixBackend(noise=model),
        )
        # Heavy depolarisation destroys the Bell correlation: the
        # entanglement assertion must fail against the noisy ensemble.
        assert not report.passed
