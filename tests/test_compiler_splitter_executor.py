"""Tests for breakpoint splitting and ensemble execution."""

import numpy as np
import pytest

from repro.compiler import BreakpointExecutor, split_at_assertions
from repro.lang import Program
from repro.sim import ReadoutErrorModel


def program_with_three_breakpoints():
    program = Program("three_bp")
    a = program.qreg("a", 2)
    b = program.qreg("b", 1)
    program.prepare_int(a, 2)
    program.assert_classical(a, 2, label="prep check")
    program.h(a[0])
    program.h(a[1])
    program.assert_superposition(a, label="superposition check")
    program.cnot(a[0], b[0])
    program.assert_entangled([a[0]], b, label="entangled check")
    program.measure(a)
    return program, a, b


class TestSplitter:
    def test_one_breakpoint_per_assertion(self):
        program, *_ = program_with_three_breakpoints()
        breakpoints = split_at_assertions(program)
        assert len(breakpoints) == 3
        assert [bp.index for bp in breakpoints] == [0, 1, 2]
        assert [bp.name for bp in breakpoints] == [
            "prep check",
            "superposition check",
            "entangled check",
        ]

    def test_prefixes_are_cumulative(self):
        program, *_ = program_with_three_breakpoints()
        breakpoints = split_at_assertions(program)
        assert [bp.gates_before for bp in breakpoints] == [0, 2, 3]
        # Earlier assertions are never replayed inside later prefixes.
        assert all(len(bp.program.assertions()) == 0 for bp in breakpoints)

    def test_terminal_measurement_excluded_from_prefixes(self):
        program, *_ = program_with_three_breakpoints()
        breakpoints = split_at_assertions(program)
        from repro.lang.instructions import MeasureInstruction

        for bp in breakpoints:
            assert not any(
                isinstance(i, MeasureInstruction) for i in bp.program.instructions
            )

    def test_no_assertions_gives_no_breakpoints(self):
        program = Program()
        q = program.qreg("q", 1)
        program.h(q[0])
        assert split_at_assertions(program) == []

    def test_breakpoint_programs_share_registers(self):
        program, a, b = program_with_three_breakpoints()
        breakpoints = split_at_assertions(program)
        for bp in breakpoints:
            assert bp.program.qubit_index(a[0]) == program.qubit_index(a[0])
            assert bp.program.qubit_index(b[0]) == program.qubit_index(b[0])

    def test_describe(self):
        program, *_ = program_with_three_breakpoints()
        text = split_at_assertions(program)[1].describe()
        assert "breakpoint 1" in text and "2 gates" in text


class TestExecutor:
    def test_classical_breakpoint_samples(self, rng):
        program, *_ = program_with_three_breakpoints()
        breakpoints = split_at_assertions(program)
        executor = BreakpointExecutor(ensemble_size=12, rng=rng)
        measurements = executor.run(breakpoints[0])
        assert measurements.joint.num_samples == 12
        assert set(measurements.group_a.samples) == {2}
        assert measurements.group_b is None

    def test_entangled_breakpoint_groups(self, rng):
        program, a, b = program_with_three_breakpoints()
        breakpoints = split_at_assertions(program)
        executor = BreakpointExecutor(ensemble_size=24, rng=rng)
        measurements = executor.run(breakpoints[2])
        assert measurements.group_a.num_bits == 1
        assert measurements.group_b.num_bits == 1
        # a[0] and b[0] are perfectly correlated after the CNOT.
        assert measurements.group_a.samples == measurements.group_b.samples

    def test_rerun_mode_matches_statistics(self):
        program, *_ = program_with_three_breakpoints()
        breakpoints = split_at_assertions(program)
        executor = BreakpointExecutor(ensemble_size=40, rng=3, mode="rerun")
        measurements = executor.run(breakpoints[1])
        counts = measurements.group_a.counts()
        assert sum(counts.values()) == 40
        assert set(counts) <= {0, 1, 2, 3}

    def test_readout_error_is_applied(self):
        program, *_ = program_with_three_breakpoints()
        breakpoints = split_at_assertions(program)
        executor = BreakpointExecutor(
            ensemble_size=16, rng=0, readout_error=ReadoutErrorModel(p01=1.0, p10=1.0)
        )
        measurements = executor.run(breakpoints[0])
        # Every bit flips, so the prepared value 2 reads as 1 (two-bit register).
        assert set(measurements.group_a.samples) == {1}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BreakpointExecutor(ensemble_size=0)
        with pytest.raises(ValueError):
            BreakpointExecutor(mode="imaginary")
