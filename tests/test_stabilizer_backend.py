"""Tests for the stabilizer tableau backend and hybrid Clifford routing."""

import numpy as np
import pytest

from repro.compiler import BreakpointExecutor, build_execution_plan
from repro.core import check_program
from repro.lang import (
    Program,
    clifford_prefix_length,
    is_clifford_instruction,
)
from repro.lang.instructions import GateInstruction
from repro.sim import (
    HybridCliffordBackend,
    NotCliffordGateError,
    StabilizerBackend,
    Statevector,
    gates,
    make_backend,
)
from repro.sim.clifford import (
    decompose_controlled_gate,
    match_controlled_pauli,
    match_single_qubit_clifford,
)
from repro.workloads import (
    CLIFFORD_SCENARIOS,
    build_ghz_chain_program,
    build_repetition_code_program,
    build_teleportation_program,
)

SEED = 20190622

#: (name, matrix) pairs covering every spelling of the tableau generator set.
CLIFFORD_1Q = [
    ("h", gates.H),
    ("s", gates.S),
    ("sdg", gates.SDG),
    ("x", gates.X),
    ("y", gates.Y),
    ("z", gates.Z),
    ("sx", gates.SX),
    ("rz(pi/2)", gates.rz(np.pi / 2)),
    ("rx(-pi/2)", gates.rx(-np.pi / 2)),
    ("ry(pi/2)", gates.ry(np.pi / 2)),
    ("phase(3pi/2)", gates.phase(3 * np.pi / 2)),
]
CLIFFORD_2Q = [("cx", gates.CNOT), ("cz", gates.CZ), ("swap", gates.SWAP)]
CONTROLLED_PAULI = [
    ("cx", gates.X),
    ("cy", gates.Y),
    ("cz", gates.Z),
    ("c-rz(pi)", gates.rz(np.pi)),
    ("c-phase(pi)", gates.phase(np.pi)),
    ("c-iX", 1j * gates.X),
]


def _random_clifford_pair(rng, num_qubits, depth=40):
    """A random Clifford circuit applied to both backends in lock-step."""
    sv = Statevector(num_qubits)
    tableau = StabilizerBackend(num_qubits)
    for _ in range(depth):
        kind = int(rng.integers(0, 3))
        if kind == 0:
            _, matrix = CLIFFORD_1Q[int(rng.integers(len(CLIFFORD_1Q)))]
            q = int(rng.integers(num_qubits))
            sv.apply_matrix(matrix, [q])
            tableau.apply_matrix(matrix, [q])
        elif kind == 1:
            _, matrix = CLIFFORD_2Q[int(rng.integers(len(CLIFFORD_2Q)))]
            a, b = (int(q) for q in rng.permutation(num_qubits)[:2])
            sv.apply_matrix(matrix, [a, b])
            tableau.apply_matrix(matrix, [a, b])
        else:
            _, matrix = CONTROLLED_PAULI[int(rng.integers(len(CONTROLLED_PAULI)))]
            a, b = (int(q) for q in rng.permutation(num_qubits)[:2])
            sv.apply_controlled(matrix, [a], [b])
            tableau.apply_controlled(matrix, [a], [b])
    return sv, tableau


class TestCliffordRecognition:
    @pytest.mark.parametrize("name,matrix", CLIFFORD_1Q)
    def test_single_qubit_cliffords_recognised(self, name, matrix):
        assert match_single_qubit_clifford(matrix) is not None

    def test_t_gate_not_recognised(self):
        assert match_single_qubit_clifford(gates.T) is None
        assert match_single_qubit_clifford(gates.TDG) is None

    def test_rotation_by_generic_angle_not_recognised(self):
        assert match_single_qubit_clifford(gates.rz(0.3)) is None

    @pytest.mark.parametrize("name,matrix", CONTROLLED_PAULI)
    def test_controlled_pauli_recognised(self, name, matrix):
        assert match_controlled_pauli(matrix) is not None

    def test_controlled_s_rejected(self):
        # c-phase(pi/2) = controlled-S is the canonical non-Clifford trap:
        # phase(pi/2) is Clifford uncontrolled but not of the i^k*P form.
        assert match_single_qubit_clifford(gates.phase(np.pi / 2)) is not None
        assert match_controlled_pauli(gates.phase(np.pi / 2)) is None

    def test_multi_control_rejected(self):
        with pytest.raises(NotCliffordGateError):
            decompose_controlled_gate(gates.X, num_controls=2, num_targets=1)
        with pytest.raises(NotCliffordGateError):
            decompose_controlled_gate(gates.SWAP, num_controls=1, num_targets=2)


class TestInstructionClassification:
    def test_clifford_gates_tagged(self):
        program = Program()
        q = program.qreg("q", 3)
        program.h(q[0]).cnot(q[0], q[1]).cz(q[1], q[2]).swap(q[0], q[2])
        program.s(q[0]).sdg(q[1]).rz(q[2], np.pi / 2)
        program.cphase(q[0], q[1], np.pi)  # == CZ
        assert all(is_clifford_instruction(i) for i in program.instructions)

    def test_non_clifford_gates_tagged(self):
        program = Program()
        q = program.qreg("q", 3)
        program.t(q[0])
        program.cphase(q[0], q[1], np.pi / 2)  # controlled-S
        program.toffoli(q[0], q[1], q[2])
        program.rz(q[0], 0.7)
        assert not any(
            is_clifford_instruction(i)
            for i in program.instructions
            if isinstance(i, GateInstruction)
        )

    def test_non_gate_instructions_are_compatible(self):
        program = Program()
        q = program.qreg("q", 2)
        program.prep_z(q[0], 1)
        program.barrier()
        program.assert_classical([q[0]], 1)
        program.measure(q)
        assert all(is_clifford_instruction(i) for i in program.instructions)

    def test_prefix_length(self):
        program = Program()
        q = program.qreg("q", 2)
        program.h(q[0]).cnot(q[0], q[1]).t(q[0]).h(q[1])
        assert clifford_prefix_length(program.instructions) == 2


class TestStabilizerContract:
    """The full SimulationBackend contract on the tableau."""

    def test_registry(self):
        assert isinstance(make_backend("stabilizer"), StabilizerBackend)
        assert isinstance(make_backend("auto"), HybridCliffordBackend)
        assert isinstance(make_backend("hybrid"), HybridCliffordBackend)

    def test_requires_initialisation(self):
        with pytest.raises(RuntimeError):
            StabilizerBackend().probabilities()

    def test_initialize_to_zero(self):
        backend = StabilizerBackend(4)
        assert backend.num_qubits == 4
        assert backend.probabilities([0, 1, 2, 3])[0] == 1.0

    def test_initialize_from_basis_state(self):
        backend = StabilizerBackend().initialize(
            2, initial_state=Statevector.from_label("10")
        )
        assert backend.probabilities([0, 1])[2] == 1.0

    def test_initialize_from_superposition_raises(self):
        state = Statevector.uniform_superposition(2)
        with pytest.raises(ValueError, match="basis state"):
            StabilizerBackend().initialize(2, initial_state=state)

    def test_gate_counter(self):
        backend = StabilizerBackend(2)
        backend.apply_gate("h", [0])
        backend.apply_controlled(gates.X, [0], [1])
        backend.apply_matrix(gates.SWAP, [0, 1])
        assert backend.gates_applied == 3
        assert backend.statevector_gates_applied == 0

    def test_non_clifford_raises(self):
        backend = StabilizerBackend(2)
        with pytest.raises(NotCliffordGateError):
            backend.apply_matrix(gates.T, [0])
        with pytest.raises(NotCliffordGateError):
            backend.apply_controlled(gates.phase(np.pi / 4), [0], [1])
        # The failed application is not counted.
        assert backend.gates_applied == 0

    def test_snapshot_restore_roundtrip(self, rng):
        backend = StabilizerBackend(3)
        backend.apply_gate("h", [0])
        backend.apply_controlled(gates.X, [0], [1])
        backend.apply_controlled(gates.X, [1], [2])
        before = backend.probabilities([0, 1, 2]).copy()
        token = backend.snapshot()
        backend.measure([0, 1, 2], rng=rng)
        assert np.max(backend.probabilities([0, 1, 2])) == 1.0
        backend.restore(token)
        assert np.allclose(backend.probabilities([0, 1, 2]), before)
        # The token stays valid across repeated restores.
        backend.measure([0, 1, 2], rng=rng)
        backend.restore(token)
        assert np.allclose(backend.probabilities([0, 1, 2]), before)

    def test_restore_validates(self):
        backend = StabilizerBackend(2)
        with pytest.raises(ValueError):
            backend.restore("nonsense")
        with pytest.raises(ValueError):
            backend.restore(StabilizerBackend(3).snapshot())

    def test_sample_does_not_collapse(self, rng):
        backend = StabilizerBackend(2)
        backend.apply_gate("h", [0])
        probs = backend.probabilities([0]).copy()
        outcomes = backend.sample([0], shots=64, rng=rng)
        assert set(int(v) for v in outcomes) == {0, 1}
        assert np.allclose(backend.probabilities([0]), probs)

    def test_measure_collapses(self, rng):
        backend = StabilizerBackend(2)
        backend.apply_gate("h", [0])
        backend.apply_controlled(gates.X, [0], [1])
        outcome = backend.measure([0, 1], rng=rng)
        assert outcome in (0, 3)
        assert backend.probabilities([0, 1])[outcome] == 1.0

    def test_ghz_distribution_at_40_qubits(self):
        backend = StabilizerBackend(40)
        backend.apply_gate("h", [0])
        for i in range(39):
            backend.apply_controlled(gates.X, [i], [i + 1])
        distribution = backend.outcome_distribution(list(range(40)))
        assert distribution == {0: 0.5, (1 << 40) - 1: 0.5}

    def test_dense_probabilities_guard(self):
        backend = StabilizerBackend(24)
        with pytest.raises(ValueError, match="materialisation limit"):
            backend.probabilities()


class TestAgainstStatevector:
    """Random Clifford circuits must match the dense simulation exactly."""

    @pytest.mark.parametrize("trial", range(10))
    def test_distributions_match(self, trial):
        rng = np.random.default_rng(SEED + trial)
        num_qubits = int(rng.integers(2, 6))
        sv, tableau = _random_clifford_pair(rng, num_qubits)
        assert np.allclose(
            tableau.probabilities(), sv.probabilities(), atol=1e-9
        )
        subset = [int(q) for q in rng.permutation(num_qubits)[:2]]
        assert np.allclose(
            tableau.probabilities(subset), sv.probabilities(subset), atol=1e-9
        )

    @pytest.mark.parametrize("trial", range(10))
    def test_to_statevector_reconstruction(self, trial):
        rng = np.random.default_rng(SEED + 100 + trial)
        num_qubits = int(rng.integers(2, 6))
        sv, tableau = _random_clifford_pair(rng, num_qubits)
        assert tableau.to_statevector().equiv(sv, atol=1e-9)


class TestHybridBackend:
    def test_stays_on_tableau_for_clifford(self):
        backend = HybridCliffordBackend(3)
        backend.apply_gate("h", [0])
        backend.apply_controlled(gates.X, [0], [1])
        assert backend.stage == "tableau"
        assert backend.conversions == 0
        assert backend.statevector_gates_applied == 0

    def test_converts_once_at_first_non_clifford_gate(self):
        backend = HybridCliffordBackend(2)
        backend.apply_gate("h", [0])
        backend.apply_gate("t", [0])
        assert backend.stage == "statevector"
        assert backend.conversions == 1
        backend.apply_gate("t", [0])
        backend.apply_gate("h", [0])
        assert backend.conversions == 1
        assert backend.gates_applied == 4
        assert backend.statevector_gates_applied == 3

    def test_converted_state_matches_dense_run(self):
        backend = HybridCliffordBackend(2)
        reference = Statevector(2)
        for apply in (
            lambda b: b.apply_matrix(gates.H, [0]),
            lambda b: b.apply_controlled(gates.X, [0], [1]),
            lambda b: b.apply_matrix(gates.T, [1]),
            lambda b: b.apply_controlled(gates.rz(0.4), [1], [0]),
        ):
            apply(backend)
            apply(reference)
        assert backend.to_statevector().equiv(reference, atol=1e-9)

    def test_snapshot_restore_across_stages(self, rng):
        backend = HybridCliffordBackend(2)
        backend.apply_gate("h", [0])
        token = backend.snapshot()  # tableau-stage token
        backend.apply_gate("t", [0])  # converts
        assert backend.stage == "statevector"
        backend.restore(token)
        assert backend.stage == "tableau"
        assert np.allclose(backend.probabilities([0]), [0.5, 0.5])

    def test_wide_mixed_program_error_names_the_routing(self):
        backend = HybridCliffordBackend(26)
        backend.apply_gate("h", [0])
        with pytest.raises(ValueError, match="backend='auto'.*conversion"):
            backend.apply_gate("t", [0])

    def test_non_basis_initial_state_starts_dense(self):
        state = Statevector.uniform_superposition(2)
        backend = HybridCliffordBackend().initialize(2, initial_state=state)
        assert backend.stage == "statevector"
        assert np.allclose(backend.probabilities(), np.full(4, 0.25))

    def test_program_simulate_through_auto(self):
        program = Program()
        q = program.qreg("q", 2)
        program.h(q[0]).cnot(q[0], q[1]).t(q[1])
        auto_state = program.simulate(backend="auto")
        dense_state = program.simulate(backend="statevector")
        assert auto_state.equiv(dense_state, atol=1e-9)


class TestPlanMetadata:
    def test_clifford_plan_flags(self):
        plan = build_execution_plan(build_ghz_chain_program(6))
        assert plan.is_clifford
        assert plan.clifford_prefix_segments == plan.num_breakpoints
        assert plan.clifford_prefix_gates == plan.total_gates
        assert all(s.is_clifford for s in plan.segments)

    def test_mixed_plan_boundary(self):
        program = Program()
        q = program.qreg("q", 2)
        program.h(q[0])
        program.assert_superposition([q[0]], label="clifford breakpoint")
        program.cnot(q[0], q[1])
        program.t(q[1])
        program.h(q[1])
        program.assert_entangled([q[0]], [q[1]], label="mixed breakpoint")
        plan = build_execution_plan(program)
        assert not plan.is_clifford
        assert plan.clifford_prefix_segments == 1
        assert plan.segments[0].is_clifford
        assert not plan.segments[1].is_clifford
        assert plan.segments[1].clifford_prefix == 1  # the cnot before the t
        assert plan.clifford_prefix_gates == 2  # h + cnot

    def test_segment_describe_mentions_regime(self):
        plan = build_execution_plan(build_ghz_chain_program(4))
        assert "clifford" in plan.segments[0].describe()


class TestCheckerIntegration:
    @pytest.mark.parametrize("name", sorted(CLIFFORD_SCENARIOS))
    def test_cross_backend_verdict_matrix(self, name):
        """statevector / density / stabilizer / auto agree verdict-for-verdict."""
        scenario = CLIFFORD_SCENARIOS[name]
        for build in (scenario.build_correct, scenario.build_buggy):
            program = build()
            verdicts = {}
            for backend in ("statevector", "density", "stabilizer", "auto"):
                report = check_program(
                    program,
                    ensemble_size=scenario.ensemble_size,
                    rng=SEED,
                    backend=backend,
                )
                verdicts[backend] = [r.outcome.passed for r in report.records]
            assert (
                verdicts["statevector"]
                == verdicts["density"]
                == verdicts["stabilizer"]
                == verdicts["auto"]
            ), verdicts

    @pytest.mark.parametrize("name", sorted(CLIFFORD_SCENARIOS))
    def test_deep_workloads_beyond_statevector_reach(self, name):
        """>= 24-qubit Clifford workloads complete with correct verdicts."""
        scenario = CLIFFORD_SCENARIOS[name]
        assert scenario.deep_qubits >= 24
        correct = check_program(
            scenario.build_correct(scenario.deep_qubits),
            ensemble_size=scenario.ensemble_size,
            rng=SEED,
            backend="stabilizer",
        )
        assert correct.passed
        buggy = check_program(
            scenario.build_buggy(scenario.deep_qubits),
            ensemble_size=scenario.ensemble_size,
            rng=SEED,
            backend="stabilizer",
        )
        assert not buggy.passed
        caught = {
            r.outcome.assertion_type for r in buggy.records if not r.outcome.passed
        }
        assert scenario.catching_assertion in caught

    def test_deep_ghz_through_auto_routes_to_tableau(self):
        # An all-Clifford plan must never build a statevector under "auto".
        program = build_ghz_chain_program(32)
        plan = build_execution_plan(program)
        executor = BreakpointExecutor(ensemble_size=32, rng=SEED, backend="auto")
        measurements = executor.run_plan(plan)
        assert executor.statevector_gates_applied == 0
        assert len(measurements) == plan.num_breakpoints

    def test_hybrid_identical_to_statevector_on_shor(self):
        """Verdict- and ensemble-identity plus strictly fewer dense gates."""
        from repro.algorithms.shor import build_shor_program

        plan = build_execution_plan(
            build_shor_program(assert_each_iteration=True).program
        )
        assert not plan.is_clifford
        assert plan.clifford_prefix_gates > 0

        hybrid = BreakpointExecutor(ensemble_size=32, rng=SEED, backend="auto")
        hybrid_measurements = hybrid.run_plan(plan)
        dense = BreakpointExecutor(
            ensemble_size=32, rng=SEED, backend="statevector"
        )
        dense_measurements = dense.run_plan(plan)

        for ours, theirs in zip(hybrid_measurements, dense_measurements):
            assert list(ours.joint.samples) == list(theirs.joint.samples)
        assert hybrid.gates_applied == dense.gates_applied
        assert hybrid.statevector_gates_applied < dense.statevector_gates_applied

    def test_hybrid_identity_on_non_clifford_bug_scenario(self):
        """Hybrid matches statevector verdicts on a non-Clifford bug pair."""
        from repro.bugs import BUG_SCENARIOS

        scenario = BUG_SCENARIOS["flipped_rotation_angles"]
        for build in (scenario.build_correct, scenario.build_buggy):
            program = build()
            auto_report = check_program(
                program, ensemble_size=32, rng=SEED, backend="auto"
            )
            dense_report = check_program(
                program, ensemble_size=32, rng=SEED, backend="statevector"
            )
            assert [r.outcome.passed for r in auto_report.records] == [
                r.outcome.passed for r in dense_report.records
            ]

    def test_rerun_mode_on_stabilizer(self):
        program = build_ghz_chain_program(5)
        report = check_program(
            program, ensemble_size=16, rng=SEED, backend="stabilizer", mode="rerun"
        )
        assert report.passed


class TestWorkloadBuilders:
    def test_ghz_minimum_width(self):
        with pytest.raises(ValueError):
            build_ghz_chain_program(2)

    def test_teleport_hops_scale_width(self):
        program = build_teleportation_program(num_hops=3)
        assert program.num_qubits == 7

    def test_repetition_code_layout(self):
        program = build_repetition_code_program(num_data=5)
        assert program.num_qubits == 9  # 5 data + 4 syndrome
        plan = build_execution_plan(program)
        assert plan.is_clifford
