"""Property-based invariants across the stack (hypothesis).

These properties cut across modules: random programs stay normalised, the
adjoint of a program really is its inverse, controlling a program on a |1>
control reproduces the original action, the swap-free QFT and the Fourier
adder compose into exact modular addition, and the statistical assertions are
consistent with the exact entanglement ground truth from the density-matrix
substrate.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assertions import EntanglementAssertion, ProductStateAssertion
from repro.lang import Program
from repro.sim import MeasurementEnsemble, Statevector, is_product_state


# ---------------------------------------------------------------------------
# Random program generation
# ---------------------------------------------------------------------------

_SINGLE_QUBIT_GATES = ["h", "x", "y", "z", "s", "t", "sdg", "tdg"]
_PARAM_GATES = ["rx", "ry", "rz", "phase"]


def _random_program(seed: int, num_qubits: int, num_gates: int) -> Program:
    generator = np.random.default_rng(seed)
    program = Program(f"random_{seed}")
    register = program.qreg("q", num_qubits)
    for _ in range(num_gates):
        choice = generator.integers(0, 4)
        if choice == 0:
            name = _SINGLE_QUBIT_GATES[generator.integers(0, len(_SINGLE_QUBIT_GATES))]
            program.gate(name, register[int(generator.integers(0, num_qubits))])
        elif choice == 1:
            name = _PARAM_GATES[generator.integers(0, len(_PARAM_GATES))]
            program.gate(
                name,
                register[int(generator.integers(0, num_qubits))],
                params=(float(generator.uniform(-math.pi, math.pi)),),
            )
        elif choice == 2 and num_qubits >= 2:
            a, b = generator.choice(num_qubits, size=2, replace=False)
            program.cnot(register[int(a)], register[int(b)])
        else:
            a = int(generator.integers(0, num_qubits))
            program.gate(
                "phase",
                register[a],
                controls=register[int((a + 1) % num_qubits)] if num_qubits >= 2 else None,
                params=(float(generator.uniform(-math.pi, math.pi)),),
            )
    return program


class TestProgramInvariants:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_random_programs_preserve_norm(self, seed):
        program = _random_program(seed, num_qubits=3, num_gates=12)
        state = program.simulate()
        assert state.is_normalized()

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_inverse_program_undoes_the_program(self, seed):
        program = _random_program(seed, num_qubits=3, num_gates=10)
        state = program.simulate()
        restored = program.inverse().simulate(initial_state=state)
        assert restored.fidelity(Statevector(3)) == pytest.approx(1.0)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_controlled_program_with_hot_control_matches_original(self, seed):
        program = _random_program(seed, num_qubits=2, num_gates=8)
        data_register = program.registers[0]

        host = Program("host")
        control = host.qreg("c", 1)
        host.add_register(data_register)
        host.x(control[0])
        host.extend(program.controlled_on(control[0]))
        controlled_state = host.simulate()

        reference = program.simulate()
        # Project out the control qubit (it stays |1>) and compare.
        data_indices = [host.qubit_index(q) for q in data_register]
        controlled_probs = controlled_state.probabilities(data_indices)
        assert np.allclose(controlled_probs, reference.probabilities(), atol=1e-9)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_unitary_of_random_program_is_unitary(self, seed):
        program = _random_program(seed, num_qubits=2, num_gates=6)
        matrix = program.unitary()
        assert np.allclose(matrix.conj().T @ matrix, np.eye(4), atol=1e-9)


class TestArithmeticInvariants:
    @given(
        width=st.integers(2, 4),
        a=st.integers(0, 15),
        b=st.integers(0, 15),
        c=st.integers(0, 15),
    )
    @settings(max_examples=25, deadline=None)
    def test_addition_is_associative_in_fourier_space(self, width, a, b, c):
        """Adding a then b equals adding (a+b) in one go (all mod 2^width)."""
        from repro.algorithms.arithmetic import append_phi_add_const
        from repro.algorithms.qft import append_iqft, append_qft

        a %= 1 << width
        b %= 1 << width
        c %= 1 << width

        two_step = Program("two_step")
        register = two_step.qreg("b", width)
        two_step.prepare_int(register, c)
        append_qft(two_step, register)
        append_phi_add_const(two_step, register, a)
        append_phi_add_const(two_step, register, b)
        append_iqft(two_step, register)

        one_step = Program("one_step")
        register2 = one_step.qreg("b", width)
        one_step.prepare_int(register2, c)
        append_qft(one_step, register2)
        append_phi_add_const(one_step, register2, (a + b) % (1 << width))
        append_iqft(one_step, register2)

        expected = (a + b + c) % (1 << width)
        for program, reg in ((two_step, register), (one_step, register2)):
            state = program.simulate()
            indices = [program.qubit_index(q) for q in reg]
            assert state.probability_of_outcome(indices, expected) == pytest.approx(1.0)

    @given(multiplier=st.sampled_from([1, 2, 4, 7, 8, 11, 13, 14]), x=st.integers(0, 14))
    @settings(max_examples=20, deadline=None)
    def test_inplace_multiplier_matches_classical_arithmetic(self, multiplier, x):
        from repro.algorithms.modular import append_cmult_inplace

        program = Program("mult")
        ctrl = program.qreg("c", 1)
        program.x(ctrl[0])
        x_register = program.qreg("x", 4)
        b_register = program.qreg("b", 5)
        ancilla = program.qreg("a", 1)
        program.prepare_int(x_register, x)
        append_cmult_inplace(program, ctrl[0], x_register, b_register, multiplier, 15, ancilla[0])
        state = program.simulate()
        indices = [program.qubit_index(q) for q in x_register]
        expected = (multiplier * x) % 15 if x < 15 else x
        assert state.probability_of_outcome(indices, expected) == pytest.approx(1.0)


class TestAssertionsAgreeWithGroundTruth:
    """The statistical verdicts must agree with exact density-matrix checks."""

    def _two_qubit_state_program(self, entangling_angle: float) -> Program:
        program = Program("partial")
        q = program.qreg("q", 2)
        program.h(q[0])
        program.cry(q[0], q[1], entangling_angle)
        return program

    @given(angle=st.sampled_from([0.0, 0.5, 1.0, 2.0, math.pi]))
    @settings(max_examples=10, deadline=None)
    def test_entanglement_assertion_vs_purity(self, angle):
        program = self._two_qubit_state_program(angle)
        state = program.simulate()
        exactly_product = is_product_state(state, [0], [1])

        samples = state.sample([0, 1], shots=256, rng=7)
        ensemble_a = MeasurementEnsemble(1, [int(s) & 1 for s in samples])
        ensemble_b = MeasurementEnsemble(1, [(int(s) >> 1) & 1 for s in samples])

        entangled_outcome = EntanglementAssertion().evaluate(ensemble_a, ensemble_b)
        product_outcome = ProductStateAssertion().evaluate(ensemble_a, ensemble_b)

        if exactly_product:
            # No correlation exists, so the product assertion must hold and the
            # entanglement assertion must fail.
            assert product_outcome.passed
            assert not entangled_outcome.passed
        elif angle >= 1.0:
            # Strongly entangled: with 256 samples the verdicts are reliable.
            assert entangled_outcome.passed
            assert not product_outcome.passed
