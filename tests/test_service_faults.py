"""Chaos engineering for the job service: crash/hang/slow/error injection.

Each test drives :class:`~repro.service.jobs.LocalService` (or the sharded
sweep) with a deterministic ``REPRO_FAULT_SPEC``-style fault schedule and
asserts the structured recovery the acceptance criteria demand: a SIGKILLed
worker is retried and the final report is byte-identical to an uninjected
seeded run; a hung job comes back ``TIMEOUT`` within its budget plus grace;
exhausted retries yield ``FAILED`` with the full failure chain.
"""

from __future__ import annotations

import time

import pytest

from repro import RunConfig, check_program
from repro.algorithms.bell import build_bell_program
from repro.service import (
    FaultInjector,
    FaultSpecError,
    InjectedFault,
    JobState,
    LocalService,
    RetryPolicy,
)
from repro.workloads.sharding import run_sharded_points, sweep_point_configs

SEED = 20190622
WAIT = 120.0

#: Fast backoff so retry tests don't sleep their way through CI.
CFG = RunConfig(ensemble_size=8, seed=SEED, backoff_base=0.01, max_retries=2)


def service(fault_spec, **kwargs):
    kwargs.setdefault("max_workers", 2)
    kwargs.setdefault("root_seed", SEED)
    return LocalService(fault_spec=fault_spec, **kwargs)


# ---------------------------------------------------------------------------
# Fault spec grammar
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_parse_spell_round_trip(self):
        spec = "crash@0; hang@2x3; slow@5:0.25; error@7"
        injector = FaultInjector.parse(spec)
        assert FaultInjector.parse(injector.spell()).spell() == injector.spell()
        kinds = {rule.index: rule.kind for rule in injector.rules}
        assert kinds == {0: "crash", 2: "hang", 5: "slow", 7: "error"}

    def test_empty_spec_is_falsy_and_inert(self):
        injector = FaultInjector.parse("")
        assert not injector
        injector.fire(0, 0)  # no rule, no effect

    def test_attempt_window(self):
        injector = FaultInjector.parse("error@1x2")
        with pytest.raises(InjectedFault):
            injector.fire(1, 0)
        with pytest.raises(InjectedFault):
            injector.fire(1, 1)
        injector.fire(1, 2)  # past the window: inert
        injector.fire(0, 0)  # other index: inert

    @pytest.mark.parametrize(
        "bad",
        [
            "explode@0",  # unknown kind
            "crash",  # missing index
            "crash@x",  # non-integer index
            "crash@-1",  # negative index
            "crash@0x0",  # empty attempt window
            "slow@0:fast",  # non-numeric param
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            FaultInjector.parse(bad)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_from_config(self):
        policy = RetryPolicy.from_config(CFG.replace(max_retries=5, backoff_base=0.2))
        assert policy.max_retries == 5
        assert policy.backoff_base == pytest.approx(0.2)

    def test_retries_left_counts_retries_not_attempts(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.retries_left(1) and policy.retries_left(2)
        assert not policy.retries_left(3)
        assert not RetryPolicy(max_retries=0).retries_left(1)

    def test_delay_exponential_with_bounded_jitter(self):
        policy = RetryPolicy(max_retries=8, backoff_base=0.1, jitter=0.5)
        for retry in range(4):
            base = 0.1 * 2**retry
            delay = policy.delay(retry, seed=SEED)
            assert base <= delay <= base * 1.5

    def test_delay_capped(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=2.0, jitter=0.0)
        assert policy.delay(10) == pytest.approx(2.0)

    def test_delay_deterministic_per_seed(self):
        policy = RetryPolicy(backoff_base=0.1)
        assert policy.delay(1, seed=7) == policy.delay(1, seed=7)


# ---------------------------------------------------------------------------
# Service-level fault recovery (the acceptance criteria)
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_sigkilled_worker_retried_report_byte_identical(self):
        with service(fault_spec=None) as clean:
            baseline = clean.wait(
                clean.submit(build_bell_program(), CFG), timeout=WAIT
            )
        with service(fault_spec="crash@0") as svc:
            job = svc.wait(svc.submit(build_bell_program(), CFG), timeout=WAIT)
        assert job.state == JobState.DONE
        assert job.attempts == 2
        assert [entry["kind"] for entry in job.failure_chain] == ["crash"]
        assert job.failure_chain[0]["backoff"] > 0.0
        assert job.report.to_json() == baseline.report.to_json()

    def test_crash_every_attempt_exhausts_into_failed_with_chain(self):
        config = CFG.replace(max_retries=1)
        with service(fault_spec="crash@0x9") as svc:
            job = svc.wait(svc.submit(build_bell_program(), config), timeout=WAIT)
        assert job.state == JobState.FAILED
        assert job.attempts == 2  # first attempt + one retry
        assert [entry["kind"] for entry in job.failure_chain] == ["crash", "crash"]
        assert [entry["attempt"] for entry in job.failure_chain] == [0, 1]
        assert job.report is None

    def test_crash_does_not_poison_other_jobs(self):
        # Self-healing pool: the job after the crasher runs in its own fresh
        # subprocess and never notices.
        with service(fault_spec="crash@0x9", max_workers=1) as svc:
            doomed = svc.submit(build_bell_program(), CFG.replace(max_retries=0))
            healthy = svc.submit(build_bell_program(), CFG)
            jobs = svc.wait_all([doomed, healthy], timeout=WAIT)
        assert jobs[0].state == JobState.FAILED
        assert jobs[1].state == JobState.DONE


class TestTimeout:
    def test_hung_job_returns_timeout_within_budget_plus_grace(self):
        config = CFG.replace(job_timeout=0.5)
        with service(fault_spec="hang@0") as svc:
            start = time.monotonic()
            job = svc.wait(svc.submit(build_bell_program(), config), timeout=WAIT)
            elapsed = time.monotonic() - start
        assert job.state == JobState.TIMEOUT
        assert job.attempts == 1  # timeouts are not retried
        assert job.report is None
        entry = job.failure_chain[0]
        assert entry["kind"] == "timeout"
        assert entry["duration"] >= 0.5
        # job_timeout + SIGKILL/join grace + scheduling slack.
        assert elapsed < 0.5 + 10.0

    def test_healthy_job_unaffected_by_timeout_budget(self):
        config = CFG.replace(job_timeout=60.0)
        with service(fault_spec=None) as svc:
            job = svc.wait(svc.submit(build_bell_program(), config), timeout=WAIT)
        assert job.state == JobState.DONE


class TestDeterministicErrors:
    def test_worker_error_fails_fast_without_retries(self):
        with service(fault_spec="error@0x9") as svc:
            job = svc.wait(svc.submit(build_bell_program(), CFG), timeout=WAIT)
        assert job.state == JobState.FAILED
        assert job.attempts == 1  # deterministic: retrying cannot help
        entry = job.failure_chain[0]
        assert entry["kind"] == "error"
        assert "InjectedFault" in entry["detail"]

    def test_slow_start_just_finishes(self):
        with service(fault_spec="slow@0:0.2") as svc:
            job = svc.wait(svc.submit(build_bell_program(), CFG), timeout=WAIT)
        assert job.state == JobState.DONE
        assert job.attempts == 1


class TestMixedBatchUnderChaos:
    def test_every_job_reaches_a_terminal_state(self):
        spec = "crash@0; hang@1; error@2; slow@3:0.1"
        config = CFG.replace(job_timeout=1.0, max_retries=2)
        with service(fault_spec=spec, max_workers=2) as svc:
            ids = [svc.submit(build_bell_program(), config) for _ in range(6)]
            jobs = svc.wait_all(ids, timeout=WAIT)
        states = [job.state for job in jobs]
        assert states == [
            JobState.DONE,  # crash@0: retried to completion
            JobState.TIMEOUT,  # hang@1
            JobState.FAILED,  # error@2
            JobState.DONE,  # slow@3
            JobState.DONE,
            JobState.DONE,
        ]
        assert all(job.terminal for job in jobs)
        # Zero lost jobs: every submission is accounted for.
        assert svc.stats()["jobs"] == 6


# ---------------------------------------------------------------------------
# Sharded sweeps: worker crashes must not lose the sweep
# ---------------------------------------------------------------------------


def _sweep_points(num_points):
    configs = sweep_point_configs(
        CFG.replace(backoff_base=0.01), [{} for _ in range(num_points)]
    )
    return [(build_bell_program(), config) for config in configs]


class TestShardedCrashRecovery:
    def test_crashed_point_resubmitted_sweep_byte_identical(self, monkeypatch):
        points = _sweep_points(4)
        clean = run_sharded_points(points, max_workers=2)
        monkeypatch.setenv("REPRO_FAULT_SPEC", "crash@1")
        recovered = run_sharded_points(points, max_workers=2)
        assert [r.to_json() for r in recovered] == [r.to_json() for r in clean]

    def test_exhausted_crashes_raise_naming_lost_points(self, monkeypatch):
        points = _sweep_points(3)
        monkeypatch.setenv("REPRO_FAULT_SPEC", "crash@1x9")
        retry = RetryPolicy(max_retries=1, backoff_base=0.01)
        # The broken pool may take in-flight sibling points down with it, so
        # the lost set always contains the crasher but may name siblings too.
        with pytest.raises(
            RuntimeError, match=r"retry budget \(max_retries=1\) exhausted"
        ) as excinfo:
            run_sharded_points(points, max_workers=2, retry=retry)
        assert "1" in str(excinfo.value)

    def test_serial_path_ignores_fault_spec(self, monkeypatch):
        # The in-process path passes no fault coordinates, so an injected
        # crash can never kill the parent.
        points = _sweep_points(2)
        clean = run_sharded_points(points, max_workers=1)
        monkeypatch.setenv("REPRO_FAULT_SPEC", "crash@0; crash@1")
        serial = run_sharded_points(points, max_workers=1)
        assert [r.to_json() for r in serial] == [r.to_json() for r in clean]

    def test_deterministic_worker_errors_still_propagate(self, monkeypatch):
        points = _sweep_points(2)
        monkeypatch.setenv("REPRO_FAULT_SPEC", "error@0x9")
        with pytest.raises(InjectedFault):
            run_sharded_points(points, max_workers=2)
