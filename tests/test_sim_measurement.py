"""Tests for measurement ensembles and the readout-error model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import MeasurementEnsemble, ReadoutErrorModel
from repro.sim.measurement import counts_to_samples, samples_to_counts


class TestEnsemble:
    def test_counts_and_frequencies(self):
        ensemble = MeasurementEnsemble(num_bits=2, samples=[0, 3, 3, 1])
        assert ensemble.counts() == {0: 1, 3: 2, 1: 1}
        assert np.allclose(ensemble.frequencies(), [1, 1, 0, 2])
        assert np.allclose(ensemble.empirical_distribution(), [0.25, 0.25, 0, 0.5])

    def test_out_of_range_sample_rejected(self):
        with pytest.raises(ValueError):
            MeasurementEnsemble(num_bits=1, samples=[0, 2])

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            MeasurementEnsemble(num_bits=1, samples=[]).empirical_distribution()

    def test_extract_bits(self):
        # samples over 3 bits; keep bits [2, 0] -> new bit0 = old bit2, new bit1 = old bit0
        ensemble = MeasurementEnsemble(num_bits=3, samples=[0b101, 0b011, 0b100])
        extracted = ensemble.extract_bits([2, 0])
        assert extracted.num_bits == 2
        assert extracted.samples == [0b11, 0b10, 0b01]

    def test_extract_bits_preserves_sample_count(self):
        ensemble = MeasurementEnsemble(num_bits=4, samples=list(range(16)))
        assert extracted_len(ensemble) == 16

    def test_extend(self):
        a = MeasurementEnsemble(num_bits=2, samples=[0, 1])
        b = MeasurementEnsemble(num_bits=2, samples=[2])
        merged = a.extend(b)
        assert merged.samples == [0, 1, 2]
        with pytest.raises(ValueError):
            a.extend(MeasurementEnsemble(num_bits=3, samples=[0]))

    def test_iteration_and_len(self):
        ensemble = MeasurementEnsemble(num_bits=2, samples=[1, 2, 3])
        assert len(ensemble) == 3
        assert list(ensemble) == [1, 2, 3]

    def test_samples_list_is_copied_not_aliased(self):
        """Regression: mutating the caller's list after construction must not
        corrupt a validated ensemble."""
        caller_samples = [0, 1, 2]
        ensemble = MeasurementEnsemble(num_bits=2, samples=caller_samples)
        caller_samples.append(99)  # out of range for 2 bits
        caller_samples[0] = 3
        assert ensemble.samples == [0, 1, 2]
        assert ensemble.num_samples == 3

    def test_samples_coerced_to_python_int(self):
        ensemble = MeasurementEnsemble(
            num_bits=2, samples=[np.int64(3), np.uint8(1), 2]
        )
        assert ensemble.samples == [3, 1, 2]
        assert all(type(sample) is int for sample in ensemble.samples)

    def test_coercion_still_range_checks(self):
        with pytest.raises(ValueError):
            MeasurementEnsemble(num_bits=1, samples=[np.int64(2)])

    @given(samples=st.lists(st.integers(0, 7), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_counts_round_trip(self, samples):
        counts = samples_to_counts(samples)
        assert sorted(counts_to_samples(counts)) == sorted(samples)

    @given(samples=st.lists(st.integers(0, 15), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_frequencies_sum_to_sample_count(self, samples):
        ensemble = MeasurementEnsemble(num_bits=4, samples=samples)
        assert ensemble.frequencies().sum() == len(samples)


def extracted_len(ensemble: MeasurementEnsemble) -> int:
    return len(ensemble.extract_bits([0, 1]))


class TestReadoutError:
    def test_defaults_are_ideal(self):
        model = ReadoutErrorModel()
        assert model.is_ideal
        assert model.corrupt([1, 2, 3], num_bits=2) == [1, 2, 3]

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ReadoutErrorModel(p01=1.5)
        with pytest.raises(ValueError):
            ReadoutErrorModel(p10=-0.1)

    def test_full_flip(self):
        model = ReadoutErrorModel(p01=1.0, p10=1.0)
        assert model.corrupt([0b00, 0b11], num_bits=2, rng=0) == [0b11, 0b00]

    def test_partial_flip_statistics(self, rng):
        model = ReadoutErrorModel(p01=0.25, p10=0.0)
        samples = model.corrupt([0] * 4000, num_bits=1, rng=rng)
        flipped = sum(samples)
        assert 800 < flipped < 1200

    def test_corrupt_ensemble_wrapper(self, rng):
        model = ReadoutErrorModel(p01=1.0)
        ensemble = MeasurementEnsemble(num_bits=2, samples=[0, 0], label="x")
        corrupted = model.corrupt_ensemble(ensemble, rng=rng)
        assert corrupted.samples == [3, 3]
        assert corrupted.label == "x"


def _corrupt_reference_loop(model, samples, num_bits, generator):
    """The original per-sample/per-bit Python loop, kept as the equivalence
    oracle for the vectorised implementation."""
    corrupted = []
    for sample in samples:
        value = int(sample)
        for bit in range(num_bits):
            current = (value >> bit) & 1
            flip_probability = model.p01 if current == 0 else model.p10
            if generator.random() < flip_probability:
                value ^= 1 << bit
        corrupted.append(value)
    return corrupted


class TestVectorisedCorrupt:
    @pytest.mark.parametrize(
        "p01,p10", [(0.25, 0.0), (0.0, 0.4), (0.1, 0.3), (1.0, 1.0)]
    )
    @pytest.mark.parametrize("num_bits", [1, 3, 7])
    def test_matches_loop_implementation_on_fixed_seed(self, p01, p10, num_bits):
        """The NumPy bit-matrix flip consumes the rng stream in the same
        (sample-major, bit-minor) order as the old loop, so a fixed seed
        yields bit-identical corrupted samples."""
        model = ReadoutErrorModel(p01=p01, p10=p10)
        base = np.random.default_rng(7)
        samples = [int(v) for v in base.integers(0, 1 << num_bits, size=257)]
        vectorised = model.corrupt(samples, num_bits, rng=np.random.default_rng(123))
        loop = _corrupt_reference_loop(
            model, samples, num_bits, np.random.default_rng(123)
        )
        assert vectorised == loop

    def test_returns_plain_ints(self):
        model = ReadoutErrorModel(p01=0.5, p10=0.5)
        corrupted = model.corrupt([0, 1, 2, 3], num_bits=2, rng=0)
        assert all(type(value) is int for value in corrupted)

    def test_bits_above_num_bits_pass_through_untouched(self):
        """Like the loop implementation, the channel only acts on the low
        num_bits — high bits of a wider sample survive unchanged."""
        model = ReadoutErrorModel(p01=1.0, p10=1.0)
        assert model.corrupt([0b101], num_bits=1, rng=0) == [0b100]
        vectorised = model.corrupt([21, 37], num_bits=3, rng=np.random.default_rng(5))
        loop = _corrupt_reference_loop(
            model, [21, 37], 3, np.random.default_rng(5)
        )
        assert vectorised == loop

    def test_empty_inputs(self):
        model = ReadoutErrorModel(p01=0.5)
        assert model.corrupt([], num_bits=4, rng=0) == []
        assert model.corrupt([0, 0], num_bits=0, rng=0) == [0, 0]


class TestExactNoisyDistribution:
    def test_confusion_matrix_is_column_stochastic(self):
        model = ReadoutErrorModel(p01=0.2, p10=0.05)
        confusion = model.confusion_matrix()
        assert np.allclose(confusion.sum(axis=0), [1.0, 1.0])
        assert confusion[1, 0] == pytest.approx(0.2)
        assert confusion[0, 1] == pytest.approx(0.05)

    def test_single_bit_distribution(self):
        model = ReadoutErrorModel(p01=0.2, p10=0.1)
        noisy = model.apply_to_distribution(np.array([1.0, 0.0]), num_bits=1)
        assert np.allclose(noisy, [0.8, 0.2])
        noisy = model.apply_to_distribution(np.array([0.0, 1.0]), num_bits=1)
        assert np.allclose(noisy, [0.1, 0.9])

    def test_multi_bit_matches_brute_force(self, rng):
        model = ReadoutErrorModel(p01=0.07, p10=0.21)
        num_bits = 3
        ideal = rng.random(1 << num_bits)
        ideal /= ideal.sum()
        confusion = model.confusion_matrix()
        brute = np.zeros_like(ideal)
        for observed in range(1 << num_bits):
            for true in range(1 << num_bits):
                weight = 1.0
                for bit in range(num_bits):
                    weight *= confusion[(observed >> bit) & 1, (true >> bit) & 1]
                brute[observed] += weight * ideal[true]
        noisy = model.apply_to_distribution(ideal, num_bits)
        assert np.allclose(noisy, brute, atol=1e-12)
        assert noisy.sum() == pytest.approx(1.0)

    def test_matches_empirical_corruption(self):
        """The analytic distribution is the infinite-shot limit of corrupt()."""
        model = ReadoutErrorModel(p01=0.15, p10=0.05)
        ideal = np.array([0.5, 0.0, 0.0, 0.5])
        analytic = model.apply_to_distribution(ideal, num_bits=2)
        generator = np.random.default_rng(42)
        samples = [0] * 20000 + [3] * 20000
        corrupted = model.corrupt(samples, num_bits=2, rng=generator)
        empirical = np.bincount(corrupted, minlength=4) / len(corrupted)
        assert np.allclose(empirical, analytic, atol=0.01)

    def test_ideal_model_is_identity(self):
        model = ReadoutErrorModel()
        ideal = np.array([0.25, 0.75])
        noisy = model.apply_to_distribution(ideal, num_bits=1)
        assert np.allclose(noisy, ideal)
        noisy[0] = 0.0  # a copy, not an alias
        assert ideal[0] == pytest.approx(0.25)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ReadoutErrorModel(p01=0.1).apply_to_distribution(
                np.array([0.5, 0.5]), num_bits=2
            )
