"""Tests for measurement ensembles and the readout-error model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import MeasurementEnsemble, ReadoutErrorModel
from repro.sim.measurement import counts_to_samples, samples_to_counts


class TestEnsemble:
    def test_counts_and_frequencies(self):
        ensemble = MeasurementEnsemble(num_bits=2, samples=[0, 3, 3, 1])
        assert ensemble.counts() == {0: 1, 3: 2, 1: 1}
        assert np.allclose(ensemble.frequencies(), [1, 1, 0, 2])
        assert np.allclose(ensemble.empirical_distribution(), [0.25, 0.25, 0, 0.5])

    def test_out_of_range_sample_rejected(self):
        with pytest.raises(ValueError):
            MeasurementEnsemble(num_bits=1, samples=[0, 2])

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            MeasurementEnsemble(num_bits=1, samples=[]).empirical_distribution()

    def test_extract_bits(self):
        # samples over 3 bits; keep bits [2, 0] -> new bit0 = old bit2, new bit1 = old bit0
        ensemble = MeasurementEnsemble(num_bits=3, samples=[0b101, 0b011, 0b100])
        extracted = ensemble.extract_bits([2, 0])
        assert extracted.num_bits == 2
        assert extracted.samples == [0b11, 0b10, 0b01]

    def test_extract_bits_preserves_sample_count(self):
        ensemble = MeasurementEnsemble(num_bits=4, samples=list(range(16)))
        assert extracted_len(ensemble) == 16

    def test_extend(self):
        a = MeasurementEnsemble(num_bits=2, samples=[0, 1])
        b = MeasurementEnsemble(num_bits=2, samples=[2])
        merged = a.extend(b)
        assert merged.samples == [0, 1, 2]
        with pytest.raises(ValueError):
            a.extend(MeasurementEnsemble(num_bits=3, samples=[0]))

    def test_iteration_and_len(self):
        ensemble = MeasurementEnsemble(num_bits=2, samples=[1, 2, 3])
        assert len(ensemble) == 3
        assert list(ensemble) == [1, 2, 3]

    @given(samples=st.lists(st.integers(0, 7), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_counts_round_trip(self, samples):
        counts = samples_to_counts(samples)
        assert sorted(counts_to_samples(counts)) == sorted(samples)

    @given(samples=st.lists(st.integers(0, 15), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_frequencies_sum_to_sample_count(self, samples):
        ensemble = MeasurementEnsemble(num_bits=4, samples=samples)
        assert ensemble.frequencies().sum() == len(samples)


def extracted_len(ensemble: MeasurementEnsemble) -> int:
    return len(ensemble.extract_bits([0, 1]))


class TestReadoutError:
    def test_defaults_are_ideal(self):
        model = ReadoutErrorModel()
        assert model.is_ideal
        assert model.corrupt([1, 2, 3], num_bits=2) == [1, 2, 3]

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            ReadoutErrorModel(p01=1.5)
        with pytest.raises(ValueError):
            ReadoutErrorModel(p10=-0.1)

    def test_full_flip(self):
        model = ReadoutErrorModel(p01=1.0, p10=1.0)
        assert model.corrupt([0b00, 0b11], num_bits=2, rng=0) == [0b11, 0b00]

    def test_partial_flip_statistics(self, rng):
        model = ReadoutErrorModel(p01=0.25, p10=0.0)
        samples = model.corrupt([0] * 4000, num_bits=1, rng=rng)
        flipped = sum(samples)
        assert 800 < flipped < 1200

    def test_corrupt_ensemble_wrapper(self, rng):
        model = ReadoutErrorModel(p01=1.0)
        ensemble = MeasurementEnsemble(num_bits=2, samples=[0, 0], label="x")
        corrupted = model.corrupt_ensemble(ensemble, rng=rng)
        assert corrupted.samples == [3, 3]
        assert corrupted.label == "x"
