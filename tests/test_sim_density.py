"""Tests for density matrices, partial trace and exact entanglement checks."""

import math

import numpy as np
import pytest

from repro.sim import (
    DensityMatrix,
    Statevector,
    entanglement_entropy,
    gates,
    is_product_state,
    purity,
    reduced_density_matrix,
    schmidt_coefficients,
)


def bell_state() -> Statevector:
    state = Statevector(2)
    state.apply_matrix(gates.H, [0])
    state.apply_controlled(gates.X, [0], [1])
    return state


def ghz_state(n: int = 3) -> Statevector:
    state = Statevector(n)
    state.apply_matrix(gates.H, [0])
    for i in range(n - 1):
        state.apply_controlled(gates.X, [i], [i + 1])
    return state


class TestDensityMatrix:
    def test_from_statevector_is_valid(self):
        rho = DensityMatrix.from_statevector(bell_state())
        assert rho.is_valid()
        assert rho.purity() == pytest.approx(1.0)

    def test_probabilities_match_statevector(self):
        state = Statevector.uniform_superposition(2)
        rho = DensityMatrix.from_statevector(state)
        assert np.allclose(rho.probabilities(), state.probabilities())

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.ones((2, 3)))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.eye(3))

    def test_num_qubits_consistency_check(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.eye(4) / 4, num_qubits=3)

    def test_maximally_mixed_purity(self):
        rho = DensityMatrix(np.eye(2) / 2)
        assert rho.purity() == pytest.approx(0.5)
        assert rho.is_valid()


class TestPartialTrace:
    def test_product_state_reduction(self):
        state = Statevector.from_int(0b10, 2)
        rho = reduced_density_matrix(state, [0])
        assert np.allclose(rho.data, [[1, 0], [0, 0]])
        rho1 = reduced_density_matrix(state, [1])
        assert np.allclose(rho1.data, [[0, 0], [0, 1]])

    def test_bell_reduction_is_maximally_mixed(self):
        rho = reduced_density_matrix(bell_state(), [0])
        assert np.allclose(rho.data, np.eye(2) / 2)

    def test_reduction_keeps_order(self):
        # |q1 q0> = |01>: keep [1, 0] -> first listed qubit is the low bit.
        state = Statevector.from_int(0b01, 2)
        rho = reduced_density_matrix(state, [1, 0])
        probabilities = np.real(np.diag(rho.data))
        # outcome bit0 = qubit1 = 0, bit1 = qubit0 = 1 -> index 2
        assert probabilities[2] == pytest.approx(1.0)

    def test_duplicate_keep_rejected(self):
        with pytest.raises(ValueError):
            reduced_density_matrix(bell_state(), [0, 0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            reduced_density_matrix(bell_state(), [2])


class TestEntanglementMeasures:
    def test_purity_of_bell_half(self):
        assert purity(bell_state(), [0]) == pytest.approx(0.5)

    def test_purity_of_product_state(self):
        state = Statevector(2)
        state.apply_matrix(gates.H, [0])
        assert purity(state, [0]) == pytest.approx(1.0)

    def test_entanglement_entropy_bell_is_one_bit(self):
        assert entanglement_entropy(bell_state(), [0]) == pytest.approx(1.0)

    def test_entanglement_entropy_product_is_zero(self):
        state = Statevector.from_int(2, 2)
        assert entanglement_entropy(state, [0]) == pytest.approx(0.0, abs=1e-9)

    def test_ghz_single_qubit_entropy(self):
        assert entanglement_entropy(ghz_state(3), [0]) == pytest.approx(1.0)

    def test_schmidt_coefficients_bell(self):
        coefficients = schmidt_coefficients(bell_state(), [0])
        assert np.allclose(coefficients, [1 / math.sqrt(2), 1 / math.sqrt(2)])

    def test_is_product_state(self):
        assert not is_product_state(bell_state(), [0], [1])
        separable = Statevector(2)
        separable.apply_matrix(gates.H, [0])
        separable.apply_matrix(gates.X, [1])
        assert is_product_state(separable, [0], [1])

    def test_is_product_state_partial_groups(self):
        # GHZ: qubit 0 is entangled with the rest; but a 3-qubit GHZ plus a
        # free qubit leaves the free qubit in a product state with everything.
        state = Statevector(4)
        state.apply_matrix(gates.H, [0])
        state.apply_controlled(gates.X, [0], [1])
        state.apply_controlled(gates.X, [0], [2])
        state.apply_matrix(gates.H, [3])
        assert not is_product_state(state, [0], [1, 2])
        assert is_product_state(state, [3], [0, 1, 2])
