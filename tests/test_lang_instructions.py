"""Tests for IR instruction types and gate inversion rules."""

import math

import numpy as np
import pytest

from repro.lang import QuantumRegister
from repro.lang.instructions import (
    BarrierInstruction,
    BlockMarkerInstruction,
    ClassicalAssertInstruction,
    EntangledAssertInstruction,
    GateInstruction,
    MeasureInstruction,
    PrepInstruction,
    ProductAssertInstruction,
    SuperpositionAssertInstruction,
    gate_matrix,
    inverse_gate_spec,
)
from repro.sim import gates


@pytest.fixture
def register():
    return QuantumRegister("q", 4)


class TestGateInstruction:
    def test_describe_and_qubits(self, register):
        instruction = GateInstruction(
            name="rz", targets=(register[1],), controls=(register[0],), params=(0.5,)
        )
        assert instruction.qubits() == [register[0], register[1]]
        assert "crz" in instruction.describe()

    def test_overlapping_control_target_rejected(self, register):
        with pytest.raises(ValueError):
            GateInstruction(name="x", targets=(register[0],), controls=(register[0],))

    def test_unknown_gate_rejected(self, register):
        with pytest.raises(KeyError):
            GateInstruction(name="bogus", targets=(register[0],))

    def test_parameter_arity_enforced(self, register):
        with pytest.raises(ValueError):
            GateInstruction(name="x", targets=(register[0],), params=(0.1,))

    def test_base_matrix(self, register):
        instruction = GateInstruction(name="h", targets=(register[0],))
        assert np.allclose(instruction.base_matrix(), gates.H)

    def test_with_extra_controls(self, register):
        instruction = GateInstruction(name="x", targets=(register[2],), controls=(register[1],))
        extended = instruction.with_extra_controls([register[0]])
        assert extended.controls == (register[0], register[1])

    def test_inverse_of_parameterised_gate(self, register):
        instruction = GateInstruction(name="rz", targets=(register[0],), params=(0.7,))
        inverse = instruction.inverse()
        assert inverse.params == (-0.7,)
        product = inverse.base_matrix() @ instruction.base_matrix()
        assert np.allclose(product, np.eye(2))

    def test_inverse_of_dagger_pairs(self, register):
        s_gate = GateInstruction(name="s", targets=(register[0],))
        assert s_gate.inverse().name == "sdg"
        t_dagger = GateInstruction(name="tdg", targets=(register[0],))
        assert t_dagger.inverse().name == "t"

    def test_inverse_of_u3(self, register):
        instruction = GateInstruction(name="u3", targets=(register[0],), params=(0.3, 0.5, 0.7))
        product = instruction.inverse().base_matrix() @ instruction.base_matrix()
        assert np.allclose(product, np.eye(2), atol=1e-10)


class TestInverseSpec:
    @pytest.mark.parametrize("name", ["x", "y", "z", "h", "cx", "swap", "ccx"])
    def test_self_inverse(self, name):
        assert inverse_gate_spec(name, ())[0] == name

    def test_negating_gates(self):
        assert inverse_gate_spec("phase", (1.2,)) == ("phase", (-1.2,))
        assert inverse_gate_spec("rx", (0.4,)) == ("rx", (-0.4,))

    def test_every_invertible_pair_multiplies_to_identity(self):
        for name, params in [
            ("h", ()),
            ("s", ()),
            ("t", ()),
            ("rz", (0.3,)),
            ("ry", (1.2,)),
            ("phase", (2.1,)),
            ("u3", (0.3, 1.0, -0.4)),
        ]:
            inv_name, inv_params = inverse_gate_spec(name, params)
            product = gate_matrix(inv_name, inv_params) @ gate_matrix(name, params)
            assert np.allclose(product, np.eye(product.shape[0]), atol=1e-10), name

    def test_unknown_gate(self):
        with pytest.raises(KeyError):
            inverse_gate_spec("warp", ())


class TestOtherInstructions:
    def test_prep_validation(self, register):
        assert PrepInstruction(qubit=register[0], value=1).qubits() == [register[0]]
        with pytest.raises(ValueError):
            PrepInstruction(qubit=register[0], value=2)

    def test_measure_and_barrier(self, register):
        measure = MeasureInstruction(measured=(register[0], register[1]), label="m")
        assert len(measure.qubits()) == 2
        barrier = BarrierInstruction(marked=(register[0],), comment="phase 1")
        assert "phase 1" in barrier.describe()

    def test_block_marker_validation(self, register):
        marker = BlockMarkerInstruction(kind="compute", boundary="begin", block_id=0)
        assert marker.qubits() == []
        with pytest.raises(ValueError):
            BlockMarkerInstruction(kind="loop", boundary="begin", block_id=0)
        with pytest.raises(ValueError):
            BlockMarkerInstruction(kind="compute", boundary="middle", block_id=0)


class TestAssertionInstructions:
    def test_classical_assert_range_check(self, register):
        instruction = ClassicalAssertInstruction(measured=(register[0], register[1]), value=3)
        assert instruction.is_assertion
        with pytest.raises(ValueError):
            ClassicalAssertInstruction(measured=(register[0],), value=2)
        with pytest.raises(ValueError):
            ClassicalAssertInstruction(measured=(), value=0)

    def test_superposition_support_validation(self, register):
        instruction = SuperpositionAssertInstruction(
            measured=(register[0], register[1]), values=(0, 3)
        )
        assert "uniform over [0, 3]" in instruction.describe()
        with pytest.raises(ValueError):
            SuperpositionAssertInstruction(measured=(register[0],), values=(0,))
        with pytest.raises(ValueError):
            SuperpositionAssertInstruction(measured=(register[0],), values=(0, 0))
        with pytest.raises(ValueError):
            SuperpositionAssertInstruction(measured=(register[0],), values=(0, 5))

    def test_entangled_requires_disjoint_groups(self, register):
        instruction = EntangledAssertInstruction(
            group_a=(register[0],), group_b=(register[1], register[2])
        )
        assert len(instruction.qubits()) == 3
        with pytest.raises(ValueError):
            EntangledAssertInstruction(group_a=(register[0],), group_b=(register[0],))
        with pytest.raises(ValueError):
            EntangledAssertInstruction(group_a=(), group_b=(register[0],))

    def test_product_requires_disjoint_groups(self, register):
        instruction = ProductAssertInstruction(
            group_a=(register[0],), group_b=(register[1],)
        )
        assert "assert_product" in instruction.describe()
        with pytest.raises(ValueError):
            ProductAssertInstruction(group_a=(register[1],), group_b=(register[1],))
