"""Tests for the trajectory noise engine.

Covers Pauli-channel classification (`is_pauli` / `pauli_decomposition`),
the batched statevector kernels, the `TrajectoryNoiseBackend` contract,
Pauli frames on the stabilizer tableau (including the hybrid backend carrying
frames across the tableau->statevector conversion), executor noise routing
with `SeedSequence.spawn` rng streams, the convergence criterion, and the
seeded statistical-equivalence suite against density-exact distributions on
the small bug-catalog scenarios.
"""

import numpy as np
import pytest

from repro.bugs import BUG_SCENARIOS
from repro.compiler import BreakpointExecutor, build_execution_plan
from repro.core import (
    StatisticalAssertionChecker,
    category_standard_errors,
    check_program,
    chi_square_gof,
    ensemble_convergence,
    max_category_standard_error,
)
from repro.lang import Program
from repro.lang.program import run_instructions
from repro.sim import (
    DensityMatrixBackend,
    HybridCliffordBackend,
    KrausChannel,
    NoiseModel,
    PauliChannelSampler,
    PauliFrameSet,
    StabilizerBackend,
    StatevectorBackend,
    TrajectoryNoiseBackend,
    amplitude_damping,
    bit_flip,
    bit_phase_flip,
    depolarizing,
    gates,
    make_backend,
    phase_flip,
    spawn_trajectory_streams,
)
from repro.sim.kernels import (
    apply_controlled_batched,
    apply_matrix_batched,
    apply_pauli_batched,
    pauli_mask_kernel,
)
from repro.workloads import build_shor_noise_workload, gate_noise_sweep

SEED = 20190622

#: Bug-catalog scenarios small enough for density-exact noisy distributions.
SMALL_SCENARIOS = (
    "wrong_initial_value",
    "flipped_rotation_angles",
    "adder_iteration_off_by_one",
)


def _bell_program() -> Program:
    program = Program("bell")
    q = program.qreg("q", 2)
    program.h(q[0])
    program.cnot(q[0], q[1])
    program.assert_entangled([q[0]], [q[1]], label="pair")
    return program


def _random_unitary(rng: np.random.Generator, dim: int) -> np.ndarray:
    matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(matrix)
    return q * (np.diag(r) / np.abs(np.diag(r)))


# ---------------------------------------------------------------------------
# Pauli-channel classification
# ---------------------------------------------------------------------------


class TestPauliClassification:
    def test_standard_pauli_channels_classify(self):
        for factory in (bit_flip, phase_flip, bit_phase_flip, depolarizing):
            assert factory(0.3).is_pauli

    def test_amplitude_damping_is_not_pauli(self):
        assert not amplitude_damping(0.3).is_pauli
        with pytest.raises(ValueError, match="not a Pauli mixture"):
            amplitude_damping(0.3).pauli_decomposition()

    def test_amplitude_damping_boundary_zero_is_identity(self):
        channel = amplitude_damping(0.0)
        assert len(channel.operators) == 1
        assert channel.is_pauli
        assert channel.pauli_decomposition().labels() == ("I",)

    def test_bit_flip_decomposition_weights(self):
        mixture = bit_flip(0.3).pauli_decomposition()
        assert mixture.labels() == ("I", "X")
        assert mixture.probabilities == pytest.approx((0.7, 0.3))

    def test_depolarizing_decomposition_weights(self):
        mixture = depolarizing(0.6).pauli_decomposition()
        weights = dict(zip(mixture.labels(), mixture.probabilities))
        assert weights["I"] == pytest.approx(0.4)
        for label in "XYZ":
            assert weights[label] == pytest.approx(0.2)

    def test_boundary_p_zero_builds_identity_channel(self):
        for factory in (bit_flip, phase_flip, bit_phase_flip, depolarizing):
            channel = factory(0.0)
            assert len(channel.operators) == 1
            assert channel.pauli_decomposition().labels() == ("I",)

    def test_boundary_p_one_kraus_weights(self):
        # p = 1 must not carry a zero-weight identity operator.
        assert len(bit_flip(1.0).operators) == 1
        assert bit_flip(1.0).pauli_decomposition().labels() == ("X",)
        assert phase_flip(1.0).pauli_decomposition().labels() == ("Z",)
        assert bit_phase_flip(1.0).pauli_decomposition().labels() == ("Y",)
        mixture = depolarizing(1.0).pauli_decomposition()
        assert len(mixture.probabilities) == 3
        assert mixture.probabilities == pytest.approx((1 / 3,) * 3)

    def test_probability_bounds_rejected(self):
        for bad in (-1e-9, 1.0 + 1e-9, float("nan")):
            with pytest.raises(ValueError, match="probability"):
                bit_flip(bad)

    def test_repr_carries_channel_name(self):
        assert "depolarizing(0.25)" in repr(depolarizing(0.25))
        assert "amplitude_damping(0.5)" in repr(amplitude_damping(0.5))

    def test_two_qubit_pauli_string_channel(self):
        xz = np.kron(gates.Z, gates.X)  # X on qubit 0, Z on qubit 1
        channel = KrausChannel(
            "xz", (np.sqrt(0.9) * np.eye(4), np.sqrt(0.1) * xz)
        )
        mixture = channel.pauli_decomposition()
        assert mixture.labels() == ("II", "ZX")
        assert mixture.probabilities == pytest.approx((0.9, 0.1))

    def test_non_pauli_kraus_operator_rejected(self):
        hadamard_mix = KrausChannel(
            "had", (np.sqrt(0.5) * np.eye(2), np.sqrt(0.5) * gates.H)
        )
        assert not hadamard_mix.is_pauli

    def test_phase_scaled_pauli_recognised(self):
        channel = KrausChannel(
            "phased",
            (np.sqrt(0.6) * gates.I, np.sqrt(0.4) * np.exp(0.3j) * gates.Y),
        )
        mixture = channel.pauli_decomposition()
        assert mixture.labels() == ("I", "Y")
        assert mixture.probabilities == pytest.approx((0.6, 0.4))

    def test_noise_model_is_pauli(self):
        assert NoiseModel.from_channels(depolarizing(0.1)).is_pauli
        assert not NoiseModel.from_channels(
            [bit_flip(0.1), amplitude_damping(0.1)]
        ).is_pauli
        assert NoiseModel().is_pauli  # vacuously

    def test_sampler_inverse_cdf(self):
        sampler = PauliChannelSampler(depolarizing(0.4).pauli_decomposition())
        # Components sorted by (x, z): I (0.6), Z, X, Y at 0.1333 each.
        uniforms = np.array([0.0, 0.59, 0.65, 0.78, 0.95, 1.0 - 1e-12])
        paulis = sampler.sample(uniforms)
        assert list(paulis) == [0, 0, 3, 1, 2, 2]


# ---------------------------------------------------------------------------
# Batched kernels
# ---------------------------------------------------------------------------


class TestBatchedKernels:
    def test_random_circuit_matches_per_member_statevector(self):
        rng = np.random.default_rng(7)
        num_qubits, batch = 4, 3
        stacked = np.zeros((batch, 1 << num_qubits), dtype=complex)
        members = []
        for b in range(batch):
            state = _random_unitary(rng, 1 << num_qubits)[:, 0]
            stacked[b] = state
            members.append(state.copy())
        for _ in range(25):
            k = int(rng.integers(1, 3))
            qubits = list(rng.choice(num_qubits, size=k, replace=False))
            matrix = _random_unitary(rng, 1 << k)
            if rng.random() < 0.5:
                free = [q for q in range(num_qubits) if q not in qubits]
                controls = [int(free[0])]
                apply_controlled_batched(
                    stacked, num_qubits, matrix, controls, qubits
                )
                for member in members:
                    sv = StatevectorBackend(num_qubits)
                    sv._state.data[:] = member
                    sv.apply_controlled(matrix, controls, qubits)
                    member[:] = sv._state.data
            else:
                apply_matrix_batched(stacked, num_qubits, matrix, qubits)
                for member in members:
                    sv = StatevectorBackend(num_qubits)
                    sv._state.data[:] = member
                    sv.apply_matrix(matrix, qubits)
                    member[:] = sv._state.data
        for b in range(batch):
            np.testing.assert_allclose(stacked[b], members[b], atol=1e-12)

    def test_apply_pauli_batched_matches_gate_matrices(self):
        rng = np.random.default_rng(11)
        num_qubits = 3
        paulis = np.array([0, 1, 2, 3])
        batch = np.stack(
            [_random_unitary(rng, 1 << num_qubits)[:, 0] for _ in range(4)]
        )
        expected = batch.copy()
        for qubit in range(num_qubits):
            apply_pauli_batched(batch, qubit, paulis)
            for member, pauli in enumerate(paulis):
                if pauli:
                    matrix = {1: gates.X, 2: gates.Y, 3: gates.Z}[int(pauli)]
                    sv = StatevectorBackend(num_qubits)
                    sv._state.data[:] = expected[member]
                    sv.apply_matrix(matrix, [qubit])
                    expected[member] = sv._state.data
            np.testing.assert_allclose(batch, expected, atol=1e-12)

    def test_pauli_mask_kernel_matches_kron_product(self):
        rng = np.random.default_rng(13)
        state = _random_unitary(rng, 8)[:, 0]
        # P = Y on qubit 0, Z on qubit 1, X on qubit 2 -> x=0b101, z=0b011.
        matrix = np.kron(np.kron(gates.X, gates.Z), gates.Y)
        expected = matrix @ state
        result = pauli_mask_kernel(state, 0b101, 0b011)
        np.testing.assert_allclose(result, expected, atol=1e-12)


# ---------------------------------------------------------------------------
# TrajectoryNoiseBackend contract
# ---------------------------------------------------------------------------


class TestTrajectoryBackend:
    def test_registry_and_noiseless_single_member(self):
        backend = make_backend("trajectory")
        assert isinstance(backend, TrajectoryNoiseBackend)
        backend.initialize(2)
        backend.apply_matrix(gates.H, [0])
        backend.apply_controlled(gates.X, [0], [1])
        reference = StatevectorBackend(2)
        reference.apply_matrix(gates.H, [0])
        reference.apply_controlled(gates.X, [0], [1])
        np.testing.assert_allclose(
            backend.to_statevector().data, reference.to_statevector().data
        )

    def test_non_pauli_noise_rejected_at_construction(self):
        with pytest.raises(ValueError, match="Pauli"):
            TrajectoryNoiseBackend(noise=amplitude_damping(0.2))

    def test_deterministic_flip_channel(self):
        backend = TrajectoryNoiseBackend(
            2, noise=bit_flip(1.0), batch_size=5, seed=0
        )
        backend.apply_matrix(gates.X, [0])  # X then certain X -> |00>
        np.testing.assert_allclose(backend.probabilities(), [1, 0, 0, 0])

    def test_snapshot_restore_round_trip(self):
        backend = TrajectoryNoiseBackend(
            2, noise=depolarizing(0.3), batch_size=4, seed=1
        )
        backend.apply_matrix(gates.H, [0])
        token = backend.snapshot()
        before = backend.member_probabilities()
        backend.apply_matrix(gates.X, [1])
        backend.restore(token)
        np.testing.assert_allclose(backend.member_probabilities(), before)
        with pytest.raises(ValueError):
            backend.restore(np.zeros((3, 4)))

    def test_sample_per_member_vs_mixture(self):
        backend = TrajectoryNoiseBackend(
            1, noise=bit_flip(0.5), batch_size=64, seed=3
        )
        backend.apply_matrix(gates.I, [0])  # one noise event
        per_member = backend.sample([0], shots=64, rng=5)
        assert per_member.shape == (64,)
        # Per-member sampling of basis-state members is deterministic: the
        # sample equals each member's flip record.
        flips = backend.member_probabilities([0])[:, 1] > 0.5
        np.testing.assert_array_equal(per_member, flips.astype(int))
        mixture = backend.sample([0], shots=10, rng=5)
        assert mixture.shape == (10,)

    def test_measure_requires_single_member(self):
        backend = TrajectoryNoiseBackend(1, batch_size=2)
        with pytest.raises(RuntimeError, match="batch_size=1"):
            backend.measure([0], rng=0)
        single = TrajectoryNoiseBackend(1, batch_size=1)
        single.apply_matrix(gates.X, [0])
        assert single.measure([0], rng=0) == 1

    def test_prep_qubit_resets_each_member(self):
        backend = TrajectoryNoiseBackend(
            1, noise=bit_flip(0.5), batch_size=128, seed=9
        )
        backend.apply_matrix(gates.I, [0])  # half the members flip
        assert 0.2 < backend.probabilities([0])[1] < 0.8
        backend.prep_qubit(0, 0, rng=0)
        # Every member individually back at |0>... up to fresh prep noise,
        # which flips with probability 0.5 again -- so prep with a noiseless
        # model instead for the exactness check.
        clean = TrajectoryNoiseBackend(1, batch_size=128, seed=9)
        clean._batch[:] = backend._batch  # adopt the diverged members
        clean.prep_qubit(0, 0, rng=0)
        np.testing.assert_allclose(clean.probabilities([0]), [1.0, 0.0])

    def test_prep_qubit_collapses_superposed_members(self):
        backend = TrajectoryNoiseBackend(1, batch_size=16, seed=2)
        backend.apply_matrix(gates.H, [0])
        backend.prep_qubit(0, 1, rng=4)
        np.testing.assert_allclose(backend.probabilities([0]), [0.0, 1.0])

    def test_to_statevector_guard(self):
        backend = TrajectoryNoiseBackend(1, batch_size=2)
        with pytest.raises(ValueError, match="ensemble"):
            backend.to_statevector()
        assert backend.member_statevector(1).num_qubits == 1

    def test_stream_validation(self):
        backend = TrajectoryNoiseBackend(1, batch_size=3)
        with pytest.raises(ValueError, match="rng streams"):
            backend.set_rng_streams(spawn_trajectory_streams(0, 2))
        with pytest.raises(TypeError):
            backend.set_rng_streams([0, 1, 2])

    def test_native_readout_noise(self):
        from repro.sim import ReadoutErrorModel

        backend = TrajectoryNoiseBackend(1, batch_size=4, seed=0)
        backend.set_readout_error(ReadoutErrorModel(p01=1.0))
        np.testing.assert_allclose(backend.readout_probabilities([0]), [0, 1])
        np.testing.assert_allclose(backend.probabilities([0]), [1, 0])


# ---------------------------------------------------------------------------
# Pauli frames on the stabilizer tableau
# ---------------------------------------------------------------------------


class TestStabilizerFrames:
    def _ghz_walk(self, backend):
        backend.apply_matrix(gates.H, [0])
        backend.apply_controlled(gates.X, [0], [1])
        backend.apply_controlled(gates.X, [1], [2])
        return backend

    def test_frames_match_trajectory_exactly_under_shared_streams(self):
        batch = 256
        noise = NoiseModel.from_channels(depolarizing(0.2))
        tableau = self._ghz_walk(
            StabilizerBackend(
                3, noise=noise, batch_size=batch,
                rng_streams=spawn_trajectory_streams(17, batch),
            )
        )
        dense = self._ghz_walk(
            TrajectoryNoiseBackend(
                3, noise=noise, batch_size=batch,
                rng_streams=spawn_trajectory_streams(17, batch),
            )
        )
        np.testing.assert_allclose(
            tableau.probabilities(), dense.probabilities(), atol=1e-12
        )
        # Identical streams give identical per-member *distributions*; the
        # two readout schemes (XOR-shifted base draw vs per-member inverse
        # CDF) are distribution-equivalent, not draw-identical, so check
        # each tableau sample lands in its member's support.
        samples = tableau.sample([0, 1, 2], shots=batch, rng=3)
        member_probs = dense.member_probabilities([0, 1, 2])
        for member, outcome in enumerate(samples):
            assert member_probs[member, outcome] > 1e-12

    def test_frame_conjugation_pushes_noise_through_gates(self):
        # An X injected before a CX must propagate to both qubits.
        noise = NoiseModel.from_channels(bit_flip(1.0))
        backend = StabilizerBackend(
            2, noise=noise, batch_size=1,
            rng_streams=spawn_trajectory_streams(0, 1),
        )
        backend.apply_matrix(gates.I, [0])  # certain X on qubit 0
        backend.noise = None
        backend._samplers = ()
        backend.apply_controlled(gates.X, [0], [1])  # frame X propagates
        np.testing.assert_allclose(
            backend.probabilities(), [0, 0, 0, 1]  # |11>
        )

    def test_tableau_stays_noiseless_and_shared(self):
        noise = NoiseModel.from_channels(depolarizing(0.5))
        backend = self._ghz_walk(
            StabilizerBackend(24, noise=noise, batch_size=64, seed=5)
        )
        # The frames diverge but the tableau itself carries no noise:
        assert not backend.frames.is_identity
        assert backend.statevector_gates_applied == 0
        ideal = backend._tableau_probabilities([0, 1, 2])
        np.testing.assert_allclose(ideal[[0, 7]], [0.5, 0.5])

    def test_snapshot_restore_includes_frames(self):
        noise = NoiseModel.from_channels(bit_flip(0.4))
        backend = self._ghz_walk(
            StabilizerBackend(3, noise=noise, batch_size=8, seed=6)
        )
        token = backend.snapshot()
        assert len(token) == 5
        before = backend.probabilities()
        backend.apply_matrix(gates.X, [0])
        backend.restore(token)
        np.testing.assert_allclose(backend.probabilities(), before)
        noiseless = StabilizerBackend(3)
        assert len(noiseless.snapshot()) == 3
        with pytest.raises(ValueError, match="frame"):
            noiseless.restore(token)

    def test_measure_restricted_to_single_member(self):
        backend = StabilizerBackend(
            2, noise=bit_flip(0.3), batch_size=4, seed=0
        )
        backend.apply_matrix(gates.H, [0])
        with pytest.raises(RuntimeError, match="batch_size=1"):
            backend.measure([0], rng=0)

    def test_single_member_measure_reports_frame_adjusted_outcome(self):
        backend = StabilizerBackend(
            1, noise=bit_flip(1.0), batch_size=1, seed=0
        )
        backend.apply_matrix(gates.I, [0])  # certain flip in the frame
        assert backend.measure([0], rng=0) == 1

    def test_prep_qubit_corrects_through_frames(self):
        backend = StabilizerBackend(
            1, noise=bit_flip(1.0), batch_size=8, seed=1
        )
        backend.apply_matrix(gates.I, [0])  # all members flipped
        backend.noise = None
        backend._samplers = ()
        backend.prep_qubit(0, 0, rng=0)
        np.testing.assert_allclose(backend.probabilities([0]), [1.0, 0.0])

    def test_to_statevector_guard_and_member_states(self):
        backend = StabilizerBackend(
            2, noise=bit_flip(1.0), batch_size=2, seed=0
        )
        backend.apply_matrix(gates.H, [0])
        with pytest.raises(ValueError, match="member_statevectors"):
            backend.to_statevector()
        members = backend.member_statevectors()
        assert members.shape == (2, 4)
        # Each member: (|0>+|1>)/sqrt2 with an X flip on qubit 0 -> unchanged
        # up to phase; probabilities must match the plus state.
        for member in members:
            np.testing.assert_allclose(
                np.abs(member) ** 2, [0.5, 0.5, 0.0, 0.0], atol=1e-12
            )


class TestPauliFrameSet:
    def test_conjugation_rules_match_matrix_conjugation(self):
        # For each Clifford op word and each Pauli, verify U P U^dagger
        # against the frame update (sign-free: compare |entries|).
        single = {
            "h": gates.H, "s": gates.S, "sdg": gates.S.conj().T,
            "x": gates.X, "y": gates.Y, "z": gates.Z,
        }
        paulis = {(0, 0): gates.I, (1, 0): gates.X, (1, 1): gates.Y, (0, 1): gates.Z}
        for name, unitary in single.items():
            for (x, z), pauli in paulis.items():
                frames = PauliFrameSet(1, 1)
                frames.x[0, 0], frames.z[0, 0] = x, z
                frames.apply_ops([(name, 0)], [0])
                conjugated = unitary @ pauli @ unitary.conj().T
                expected = paulis[(int(frames.x[0, 0]), int(frames.z[0, 0]))]
                ratio = conjugated @ np.linalg.inv(expected)
                np.testing.assert_allclose(
                    np.abs(ratio), np.eye(2), atol=1e-12
                )

    def test_cx_cz_conjugation(self):
        # CX control = qubit 0 (LSB): flips qubit 1 on |x1 1>, swapping
        # indices 1 and 3.
        cx = np.eye(4)[:, [0, 3, 2, 1]]
        cz = np.diag([1, 1, 1, -1])
        two_qubit = {"cx": cx, "cz": cz}
        labels = [(0, 0), (1, 0), (1, 1), (0, 1)]
        paulis = {(0, 0): gates.I, (1, 0): gates.X, (1, 1): gates.Y, (0, 1): gates.Z}
        # (x, z) label -> inject's 0=I / 1=X / 2=Y / 3=Z code
        codes = {(0, 0): 0, (1, 0): 1, (1, 1): 2, (0, 1): 3}
        for name, unitary in two_qubit.items():
            for low in labels:
                for high in labels:
                    frames = PauliFrameSet(1, 2)
                    frames.inject(0, np.array([codes[low]]))
                    frames.inject(1, np.array([codes[high]]))
                    frames.apply_ops([(name, 0, 1)], [0, 1])
                    pauli = np.kron(paulis[high], paulis[low])
                    conjugated = unitary @ pauli @ unitary.conj().T
                    expected = np.kron(
                        paulis[(int(frames.x_bits(1)[0]), int(frames.z_bits(1)[0]))],
                        paulis[(int(frames.x_bits(0)[0]), int(frames.z_bits(0)[0]))],
                    )
                    ratio = conjugated @ np.linalg.inv(expected)
                    np.testing.assert_allclose(
                        np.abs(ratio), np.eye(4), atol=1e-12
                    )

    def test_outcome_flips_and_masks(self):
        frames = PauliFrameSet(2, 3)
        frames.inject(0, np.array([1, 0]))  # member 0: X on qubit 0
        frames.inject(2, np.array([2, 3]))  # member 0: Y, member 1: Z on qubit 2
        flips = frames.outcome_flips([0, 2])
        assert list(flips) == [0b11, 0b00]
        x_masks, z_masks = frames.masks()
        assert list(x_masks) == [0b101, 0b000]
        assert list(z_masks) == [0b100, 0b100]


# ---------------------------------------------------------------------------
# Hybrid backend: frames across the conversion
# ---------------------------------------------------------------------------


class TestHybridFrames:
    def _mixed_walk(self, backend):
        backend.apply_matrix(gates.H, [0])
        backend.apply_controlled(gates.X, [0], [1])  # Clifford prefix
        backend.apply_matrix(gates.GATE_BUILDERS["rz"](np.pi / 4), [1])
        backend.apply_controlled(gates.X, [1], [2])  # dense tail
        return backend

    def test_conversion_carries_frames(self):
        batch = 128
        noise = NoiseModel.from_channels(depolarizing(0.15))
        hybrid = self._mixed_walk(
            HybridCliffordBackend(
                3, noise=noise, batch_size=batch,
                rng_streams=spawn_trajectory_streams(23, batch),
            )
        )
        dense = self._mixed_walk(
            TrajectoryNoiseBackend(
                3, noise=noise, batch_size=batch,
                rng_streams=spawn_trajectory_streams(23, batch),
            )
        )
        assert hybrid.conversions == 1
        assert hybrid.stage == "statevector"
        assert 0 < hybrid.statevector_gates_applied < hybrid.gates_applied
        np.testing.assert_allclose(
            hybrid.probabilities(), dense.probabilities(), atol=1e-12
        )
        np.testing.assert_array_equal(
            hybrid.sample([0, 1, 2], shots=batch, rng=1),
            dense.sample([0, 1, 2], shots=batch, rng=1),
        )

    def test_cross_stage_restore_rebuilds_noisy_stage(self):
        noise = NoiseModel.from_channels(bit_flip(0.2))
        backend = HybridCliffordBackend(2, noise=noise, batch_size=4, seed=3)
        backend.apply_matrix(gates.H, [0])
        tableau_token = backend.snapshot()
        backend.apply_matrix(gates.GATE_BUILDERS["rz"](0.3), [0])
        assert backend.stage == "statevector"
        backend.restore(tableau_token)
        assert backend.stage == "tableau"
        assert backend._engine.batch_size == 4


# ---------------------------------------------------------------------------
# Executor routing + rng streams
# ---------------------------------------------------------------------------


class TestExecutorRouting:
    @pytest.mark.parametrize(
        "backend,noise,expected",
        [
            (None, depolarizing(0.1), TrajectoryNoiseBackend),
            ("statevector", depolarizing(0.1), TrajectoryNoiseBackend),
            ("trajectory", depolarizing(0.1), TrajectoryNoiseBackend),
            ("stabilizer", bit_flip(0.1), StabilizerBackend),
            ("auto", bit_flip(0.1), StabilizerBackend),
            (None, amplitude_damping(0.1), DensityMatrixBackend),
            ("density", depolarizing(0.1), DensityMatrixBackend),
        ],
    )
    def test_noise_routing(self, backend, noise, expected):
        executor = BreakpointExecutor(
            ensemble_size=8, rng=0, backend=backend, noise=noise
        )
        plan = build_execution_plan(_bell_program())
        engine = executor._new_backend(2, clifford=plan.is_clifford)
        assert isinstance(engine, expected)

    def test_mixed_auto_plan_routes_to_hybrid(self):
        executor = BreakpointExecutor(
            ensemble_size=8, rng=0, backend="auto", noise=depolarizing(0.1)
        )
        engine = executor._new_backend(2, clifford=False)
        assert isinstance(engine, HybridCliffordBackend)

    def test_trajectory_spelling_rejects_non_pauli(self):
        executor = BreakpointExecutor(
            ensemble_size=8, backend="trajectory", noise=amplitude_damping(0.1)
        )
        with pytest.raises(ValueError, match="Pauli"):
            executor._new_backend(2)

    def test_instance_spec_with_noise_rejected(self):
        executor = BreakpointExecutor(
            ensemble_size=8, backend=StatevectorBackend(), noise=bit_flip(0.1)
        )
        with pytest.raises(ValueError, match="registry"):
            executor._new_backend(2)

    def test_batch_matches_ensemble_in_sample_mode(self):
        executor = BreakpointExecutor(
            ensemble_size=12, rng=0, noise=depolarizing(0.1)
        )
        engine = executor._new_backend(2)
        assert engine.batch_size == 12

    def test_seeded_runs_reproducible_and_trials_vary(self):
        plan = build_execution_plan(_bell_program())

        def samples(seed):
            executor = BreakpointExecutor(
                ensemble_size=24, rng=seed, noise=depolarizing(0.3)
            )
            return executor.run_plan(plan)[0].joint.samples

        assert samples(9) == samples(9)
        assert samples(9) != samples(10)
        executor = BreakpointExecutor(
            ensemble_size=24, rng=9, noise=depolarizing(0.3)
        )
        first = executor.run_plan(plan)[0].joint.samples
        second = executor.run_plan(plan)[0].joint.samples
        assert first != second  # fresh spawn per walk, same parent sequence

    def test_spawned_streams_are_per_member_independent(self):
        # Same seed, different batch sizes: the spawn-based streams keep the
        # leading members' trajectory records identical (streams are spawned
        # afresh per backend — generators are stateful).
        noise = NoiseModel.from_channels(depolarizing(0.5))
        small = TrajectoryNoiseBackend(
            2, noise=noise, batch_size=4,
            rng_streams=spawn_trajectory_streams(123, 8)[:4],
        )
        large = TrajectoryNoiseBackend(
            2, noise=noise, batch_size=8,
            rng_streams=spawn_trajectory_streams(123, 8),
        )
        for backend in (small, large):
            backend.apply_matrix(gates.H, [0])
            backend.apply_controlled(gates.X, [0], [1])
        np.testing.assert_allclose(
            small.member_probabilities(),
            large.member_probabilities()[:4],
            atol=1e-12,
        )

    def test_rerun_mode_runs_one_trajectory_per_member(self):
        executor = BreakpointExecutor(
            ensemble_size=6, rng=0, mode="rerun", noise=depolarizing(0.2)
        )
        plan = build_execution_plan(_bell_program())
        results = executor.run_plan(plan)
        assert len(results[0].joint.samples) == 6

    def test_noise_model_readout_adopted(self):
        from repro.sim import ReadoutErrorModel

        model = NoiseModel(
            gate_channels=(bit_flip(0.1),),
            readout=ReadoutErrorModel(p01=0.2, p10=0.2),
        )
        executor = BreakpointExecutor(ensemble_size=8, noise=model)
        assert executor.readout_error.p01 == 0.2

    def test_explicit_ideal_readout_override_wins(self):
        # Regression: the trajectory backend must not fall back to the noise
        # model's bundled readout channel when the executor was handed an
        # explicit ideal override.
        from repro.sim import ReadoutErrorModel

        model = NoiseModel(
            gate_channels=(bit_flip(1e-12),),
            readout=ReadoutErrorModel(p01=1.0, p10=1.0),
        )

        def program():
            p = Program("flip")
            q = p.qreg("q", 1)
            p.x(q[0])
            p.assert_classical([q[0]], 1, label="one")
            return p

        executor = BreakpointExecutor(
            ensemble_size=64, rng=SEED, noise=model,
            readout_error=ReadoutErrorModel(),
        )
        samples = executor.run_plan(build_execution_plan(program()))[0].joint.samples
        assert samples == [1] * 64  # no readout corruption at all

    def test_hybrid_readout_not_doubly_corrupted(self):
        # Regression: the hybrid's dense trajectory stage must not apply the
        # noise model's readout natively on top of the executor's classical
        # corruption.  With p10 = 1.0 a single channel application maps the
        # |1> qubit to 0 deterministically; double application would map it
        # back to 1 (p01 = 0 on the corrupted 0).
        from repro.sim import ReadoutErrorModel

        model = NoiseModel(
            gate_channels=(bit_flip(1e-12),),
            readout=ReadoutErrorModel(p01=0.0, p10=1.0),
        )

        def program():
            p = Program("mixed")
            q = p.qreg("q", 1)
            p.x(q[0])
            p.rz(q[0], 0.3)  # non-Clifford: forces the dense stage
            p.assert_classical([q[0]], 1, label="one")
            return p

        executor = BreakpointExecutor(
            ensemble_size=32, rng=SEED, backend="auto", noise=model
        )
        samples = executor.run_plan(build_execution_plan(program()))[0].joint.samples
        assert samples == [0] * 32  # exactly one corruption pass

    def test_stream_pool_buffered_draws_match_scalar_calls(self):
        from repro.sim.trajectory_backend import StreamPool

        pool = StreamPool(spawn_trajectory_streams(5, 3))
        reference = spawn_trajectory_streams(5, 3)
        drawn = np.stack([pool.draw() for _ in range(300)], axis=1)
        for member, stream in enumerate(reference):
            np.testing.assert_array_equal(drawn[member], stream.random(300))

    def test_stream_pool_masked_draws_consume_per_member(self):
        from repro.sim.trajectory_backend import StreamPool

        pool = StreamPool(spawn_trajectory_streams(5, 2))
        reference = spawn_trajectory_streams(5, 2)
        first = pool.draw(np.array([1]))  # member 1 draws alone
        both = pool.draw()
        assert first[0] == reference[1].random()
        assert both[0] == reference[0].random()
        assert both[1] == reference[1].random()


# ---------------------------------------------------------------------------
# Seeded statistical equivalence: trajectory vs density-exact
# ---------------------------------------------------------------------------


class TestStatisticalEquivalence:
    RATE = 0.05
    ENSEMBLE = 512

    def _density_distributions(self, program, noise):
        plan = build_execution_plan(program)
        engine = DensityMatrixBackend(noise=noise).initialize(program.num_qubits)
        rows = []
        for segment in plan.segments:
            run_instructions(program, segment.instructions, engine, rng=SEED)
            indices = [program.qubit_index(q) for q in segment.assertion.qubits()]
            rows.append(engine.probabilities(indices))
        return rows

    @pytest.mark.parametrize("name", SMALL_SCENARIOS)
    @pytest.mark.parametrize("variant", ["correct", "buggy"])
    def test_trajectory_marginals_match_density(self, name, variant):
        scenario = BUG_SCENARIOS[name]
        build = (
            scenario.build_correct if variant == "correct" else scenario.build_buggy
        )
        program = build()
        noise = NoiseModel.from_channels(depolarizing(self.RATE))
        exact = self._density_distributions(program, noise)
        executor = BreakpointExecutor(
            ensemble_size=self.ENSEMBLE, rng=SEED, backend="trajectory",
            noise=noise,
        )
        measurements = executor.run_plan(build_execution_plan(program))
        assert len(measurements) == len(exact)
        for item, distribution in zip(measurements, exact):
            result = chi_square_gof(item.joint.samples, distribution)
            assert result.p_value >= 1e-3, (
                f"{name}/{variant}/{item.breakpoint.name}: trajectory "
                f"ensemble diverged (p={result.p_value:.2e})"
            )

    def test_noiseless_trajectory_verdicts_match_statevector(self):
        for name in SMALL_SCENARIOS:
            scenario = BUG_SCENARIOS[name]
            for build in (scenario.build_correct, scenario.build_buggy):
                program = build()
                size = scenario.ensemble_size or 16
                reference = check_program(
                    program, ensemble_size=size, rng=SEED, backend="statevector"
                )
                trajectory = check_program(
                    program, ensemble_size=size, rng=SEED, backend="trajectory"
                )
                assert [r.outcome.passed for r in reference.records] == [
                    r.outcome.passed for r in trajectory.records
                ]

    def test_midcircuit_prep_agrees_with_analytic_ensemble(self):
        # A prep on a superposed, noise-touched qubit exercises the
        # per-member reset.  Hardware-faithful semantics per run: measure q0
        # (p1 = 1/2 in every noise branch of the GHZ pair), apply a noisy X
        # only when the outcome was 1, so P(1 after reset) = 1/2 * 0.2 = 0.1.
        def build():
            program = Program("prep_noise")
            q = program.qreg("q", 2)
            program.h(q[0])
            program.cnot(q[0], q[1])
            program.prep_z(q[0], 0)
            program.assert_classical([q[0]], 0, label="reset")
            return program

        noise = NoiseModel.from_channels(bit_flip(0.2))
        executor = BreakpointExecutor(
            ensemble_size=2048, rng=SEED, backend="trajectory", noise=noise
        )
        measurements = executor.run_plan(build_execution_plan(build()))
        result = chi_square_gof(measurements[0].joint.samples, [0.9, 0.1])
        assert result.p_value >= 1e-3

    def test_stabilizer_frames_match_density_on_clifford_program(self):
        def build():
            program = Program("ghz3")
            q = program.qreg("q", 3)
            program.h(q[0])
            program.cnot(q[0], q[1])
            program.cnot(q[1], q[2])
            program.assert_superposition(
                [q[0], q[1], q[2]], values=(0, 7), label="ghz"
            )
            return program

        noise = NoiseModel.from_channels(depolarizing(0.1))
        program = build()
        exact = self._density_distributions(program, noise)
        executor = BreakpointExecutor(
            ensemble_size=1024, rng=SEED, backend="stabilizer", noise=noise
        )
        measurements = executor.run_plan(build_execution_plan(program))
        result = chi_square_gof(measurements[0].joint.samples, exact[0])
        assert result.p_value >= 1e-3


# ---------------------------------------------------------------------------
# Convergence criterion
# ---------------------------------------------------------------------------


class TestConvergence:
    def test_category_standard_errors(self):
        errors = category_standard_errors([50, 50], num_outcomes=None)
        assert errors == pytest.approx([0.05, 0.05])
        assert max_category_standard_error([50, 50]) == pytest.approx(0.05)

    def test_standard_error_shrinks_with_samples(self):
        small = max_category_standard_error([8, 8])
        large = max_category_standard_error([512, 512])
        assert large == pytest.approx(small / 8)

    def test_convergence_result(self):
        result = ensemble_convergence([50, 50], cutoff=0.06)
        assert result.converged and result.num_samples == 100
        assert not ensemble_convergence([5, 5], cutoff=0.06).converged
        with pytest.raises(ValueError, match="cutoff"):
            ensemble_convergence([5, 5], cutoff=0.0)
        with pytest.raises(ValueError, match="empty"):
            ensemble_convergence([0, 0])

    def test_checker_runs_until_converged(self):
        checker = StatisticalAssertionChecker(
            _bell_program(), ensemble_size=32, rng=SEED,
            noise=depolarizing(0.05),
        )
        checker.run_until_converged(se_cutoff=0.04, max_batches=16)
        assert checker.convergence
        for row in checker.convergence:
            assert row["converged"]
            assert row["max_standard_error"] <= 0.04
            assert row["num_samples"] >= 64  # needed more than one batch

    def test_converged_run_on_assertion_free_program(self):
        program = Program("plain")
        q = program.qreg("q", 1)
        program.h(q[0])
        checker = StatisticalAssertionChecker(program, ensemble_size=4, rng=0)
        report = checker.run_until_converged()
        assert report.records == [] and checker.convergence == []

    def test_cutoff_validated_before_any_walk(self):
        checker = StatisticalAssertionChecker(
            _bell_program(), ensemble_size=4, rng=0
        )
        with pytest.raises(ValueError, match="se_cutoff"):
            checker.run_until_converged(se_cutoff=0.0)
        assert checker.executor.gates_applied == 0  # no walk was burned

    def test_checker_respects_batch_cap(self):
        checker = StatisticalAssertionChecker(
            _bell_program(), ensemble_size=4, rng=SEED
        )
        report = checker.run_until_converged(se_cutoff=1e-4, max_batches=3)
        assert report.records[0].ensemble_size == 12
        assert not checker.convergence[0]["converged"]
        assert checker.convergence[0]["batches"] == 3


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------


class TestNoisyWorkloads:
    def test_shor_noise_workload_shape(self):
        program = build_shor_noise_workload()
        assert program.num_qubits == 13
        labels = [a.label for a in program.assertions()]
        assert any("iteration" in label for label in labels)
        buggy = build_shor_noise_workload(buggy=True)
        assert buggy.name != program.name

    def test_gate_noise_sweep_rows(self):
        scenario = BUG_SCENARIOS["wrong_initial_value"]
        rows = gate_noise_sweep(
            scenario.build_correct,
            scenario.build_buggy,
            error_rates=(0.0, 0.01),
            ensemble_size=16,
            trials=2,
            rng=SEED,
        )
        assert [row["gate_error"] for row in rows] == [0.0, 0.01]
        assert rows[0]["false_positive_rate"] == 0.0
        assert rows[0]["detection_rate"] == 1.0
        for row in rows:
            assert "depolarizing" in row["channel"]
