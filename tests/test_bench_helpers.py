"""Tests for the shared benchmark harness helpers."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from bench_helpers import append_trajectory  # noqa: E402


class TestAppendTrajectory:
    def test_creates_missing_file(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        append_trajectory(path, {"value": 1})
        entries = json.loads(path.read_text())
        assert len(entries) == 1
        assert entries[0]["value"] == 1
        assert "timestamp" in entries[0]

    def test_appends_to_existing_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        append_trajectory(path, {"value": 1})
        append_trajectory(path, {"value": 2})
        entries = json.loads(path.read_text())
        assert [entry["value"] for entry in entries] == [1, 2]

    def test_corrupt_json_restarts_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text('[{"value": 1}, {"value"')  # truncated write
        append_trajectory(path, {"value": 2})
        entries = json.loads(path.read_text())
        assert [entry["value"] for entry in entries] == [2]

    def test_non_list_payload_restarts_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text('{"not": "a list"}')
        append_trajectory(path, {"value": 3})
        entries = json.loads(path.read_text())
        assert isinstance(entries, list)
        assert [entry["value"] for entry in entries] == [3]

    def test_empty_file_restarts_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text("")
        append_trajectory(path, {"value": 4})
        entries = json.loads(path.read_text())
        assert [entry["value"] for entry in entries] == [4]
