"""Tests for the shared benchmark harness helpers."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from bench_helpers import append_trajectory  # noqa: E402


class TestAppendTrajectory:
    def test_creates_missing_file(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        append_trajectory(path, {"value": 1})
        entries = json.loads(path.read_text())
        assert len(entries) == 1
        assert entries[0]["value"] == 1
        assert "timestamp" in entries[0]

    def test_appends_to_existing_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        append_trajectory(path, {"value": 1})
        append_trajectory(path, {"value": 2})
        entries = json.loads(path.read_text())
        assert [entry["value"] for entry in entries] == [1, 2]

    def test_corrupt_json_restarts_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text('[{"value": 1}, {"value"')  # truncated write
        append_trajectory(path, {"value": 2})
        entries = json.loads(path.read_text())
        assert [entry["value"] for entry in entries] == [2]

    def test_non_list_payload_restarts_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text('{"not": "a list"}')
        append_trajectory(path, {"value": 3})
        entries = json.loads(path.read_text())
        assert isinstance(entries, list)
        assert [entry["value"] for entry in entries] == [3]

    def test_empty_file_restarts_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text("")
        append_trajectory(path, {"value": 4})
        entries = json.loads(path.read_text())
        assert [entry["value"] for entry in entries] == [4]

    def test_trajectory_bench_entry_round_trips(self, tmp_path):
        # The bench_trajectory.py payload: nested row lists with mixed
        # bool/float/int cells must survive the JSON round trip intact.
        path = tmp_path / "BENCH_trajectory.json"
        entry = {
            "ensemble_size": 16,
            "agreement": [
                {"workload": "wrong_initial_value", "chi2_p_value": 0.87,
                 "agree": True},
            ],
            "scale": [
                {"workload": "shor_13q_breakpoints", "num_qubits": 13,
                 "gate_error": 1e-3, "memory_advantage": 1024.0,
                 "buggy_detected": True},
            ],
            "deep_clifford": [
                {"scenario": "ghz_broken_link", "num_qubits": 24,
                 "detection_rate": 1.0},
            ],
        }
        append_trajectory(path, entry)
        append_trajectory(path, entry)
        entries = json.loads(path.read_text())
        assert len(entries) == 2
        for stored in entries:
            assert stored["scale"][0]["memory_advantage"] == 1024.0
            assert stored["agreement"][0]["agree"] is True
            assert stored["deep_clifford"][0]["num_qubits"] == 24
            assert "timestamp" in stored

    def test_trajectory_bench_file_corruption_recovers(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        path.write_text('[{"scale": [')  # truncated mid-write
        append_trajectory(path, {"ensemble_size": 8, "scale": []})
        entries = json.loads(path.read_text())
        assert len(entries) == 1
        assert entries[0]["ensemble_size"] == 8
