"""Tests for the lowering passes, validation and resource reports."""

import math

import numpy as np
import pytest

from repro.compiler import (
    decompose_controlled_rotations,
    decompose_multi_controls,
    decompose_toffoli,
    resource_report,
    validate_program,
)
from repro.lang import Program
from repro.sim import gates


class TestToffoliDecomposition:
    def test_unitary_preserved(self):
        program = Program()
        q = program.qreg("q", 3)
        program.toffoli(q[0], q[1], q[2])
        lowered = decompose_toffoli(program)
        assert np.allclose(lowered.unitary(), program.unitary(), atol=1e-10)

    def test_only_single_and_two_qubit_gates_remain(self):
        program = Program()
        q = program.qreg("q", 3)
        program.toffoli(q[0], q[1], q[2])
        program.h(q[0])
        lowered = decompose_toffoli(program)
        assert all(len(i.controls) <= 1 for i in lowered.gate_instructions())

    def test_non_toffoli_gates_untouched(self):
        program = Program()
        q = program.qreg("q", 2)
        program.cnot(q[0], q[1])
        lowered = decompose_toffoli(program)
        assert lowered.num_gates() == 1


class TestControlledRotationDecomposition:
    @pytest.mark.parametrize("drop", ["A", "C"])
    @pytest.mark.parametrize("angle", [math.pi / 2, 0.3, -1.1])
    def test_crz_variants_preserve_unitary(self, drop, angle):
        program = Program()
        q = program.qreg("q", 2)
        program.crz(q[0], q[1], angle)
        lowered = decompose_controlled_rotations(program, drop=drop)
        assert np.allclose(lowered.unitary(), program.unitary(), atol=1e-10)
        assert all(not i.controls or i.name == "x" for i in lowered.gate_instructions())

    @pytest.mark.parametrize("angle", [math.pi / 4, 1.9])
    def test_cphase_decomposition_preserves_unitary(self, angle):
        program = Program()
        q = program.qreg("q", 2)
        program.cphase(q[0], q[1], angle)
        lowered = decompose_controlled_rotations(program)
        assert np.allclose(lowered.unitary(), program.unitary(), atol=1e-10)

    def test_invalid_drop_choice(self):
        with pytest.raises(ValueError):
            decompose_controlled_rotations(Program(), drop="B")

    def test_multi_controlled_rotations_left_alone(self):
        program = Program()
        q = program.qreg("q", 3)
        program.ccphase(q[0], q[1], q[2], 0.5)
        lowered = decompose_controlled_rotations(program)
        assert lowered.num_gates() == 1


class TestMultiControlDecomposition:
    @pytest.mark.parametrize("num_controls", [3, 4])
    def test_action_on_all_ones_controls(self, num_controls):
        program = Program()
        controls = program.qreg("c", num_controls)
        target = program.qreg("t", 1)
        for qubit in controls:
            program.x(qubit)
        program.mcx(list(controls), target[0])
        lowered = decompose_multi_controls(program)
        assert all(len(i.controls) <= 2 for i in lowered.gate_instructions())
        state = lowered.simulate()
        target_index = lowered.qubit_index(target[0])
        assert state.probability_of_outcome([target_index], 1) == pytest.approx(1.0)

    def test_no_action_when_one_control_unset(self):
        program = Program()
        controls = program.qreg("c", 3)
        target = program.qreg("t", 1)
        program.x(controls[0])
        program.x(controls[1])  # third control remains 0
        program.mcx(list(controls), target[0])
        lowered = decompose_multi_controls(program)
        state = lowered.simulate()
        target_index = lowered.qubit_index(target[0])
        assert state.probability_of_outcome([target_index], 0) == pytest.approx(1.0)

    def test_ancillae_restored(self):
        program = Program()
        controls = program.qreg("c", 3)
        target = program.qreg("t", 1)
        for qubit in controls:
            program.x(qubit)
        program.mcx(list(controls), target[0])
        lowered = decompose_multi_controls(program)
        state = lowered.simulate()
        ancilla_register = next(r for r in lowered.registers if r.name == "mcx_ancilla")
        indices = [lowered.qubit_index(q) for q in ancilla_register]
        assert state.probability_of_outcome(indices, 0) == pytest.approx(1.0)

    def test_programs_without_large_gates_untouched(self):
        program = Program()
        q = program.qreg("q", 2)
        program.cnot(q[0], q[1])
        lowered = decompose_multi_controls(program)
        assert lowered.num_qubits == 2

    def test_invalid_max_controls(self):
        with pytest.raises(ValueError):
            decompose_multi_controls(Program(), max_controls=0)


class TestControlledPhaseAndFullLowering:
    @pytest.mark.parametrize("name", ["phase", "rz"])
    @pytest.mark.parametrize("angle", [math.pi / 4, -0.9])
    def test_ccphase_decomposition_preserves_unitary(self, name, angle):
        from repro.compiler import decompose_controlled_phases

        program = Program()
        q = program.qreg("q", 3)
        program.gate(name, [q[2]], controls=[q[0], q[1]], params=(angle,))
        lowered = decompose_controlled_phases(program)
        assert np.allclose(lowered.unitary(), program.unitary(), atol=1e-10)
        assert all(len(i.controls) <= 1 for i in lowered.gate_instructions())

    def test_lower_to_basis_only_basic_gates_remain(self):
        from repro.compiler import lower_to_basis

        program = Program()
        q = program.qreg("q", 3)
        program.ccphase(q[0], q[1], q[2], math.pi / 8)
        program.toffoli(q[0], q[1], q[2])
        program.crz(q[0], q[2], 0.4)
        lowered = lower_to_basis(program)
        for instruction in lowered.gate_instructions():
            assert len(instruction.controls) == 0 or (
                instruction.name == "x" and len(instruction.controls) == 1
            )

    def test_lower_to_basis_preserves_unitary_without_ancillae(self):
        from repro.compiler import lower_to_basis

        program = Program()
        q = program.qreg("q", 3)
        program.ccphase(q[0], q[1], q[2], math.pi / 8)
        program.toffoli(q[2], q[1], q[0])
        lowered = lower_to_basis(program)
        # No gate has more than 2 controls, so no ancilla register was added
        # and the unitaries can be compared directly.
        assert lowered.num_qubits == program.num_qubits
        assert np.allclose(lowered.unitary(), program.unitary(), atol=1e-9)

    def test_lower_to_basis_makes_qasm_export_possible(self):
        from repro.compiler import lower_to_basis
        from repro.lang import to_qasm

        program = Program()
        q = program.qreg("q", 4)
        program.mcz([q[0], q[1], q[2]], q[3])
        lowered = lower_to_basis(program)
        text = to_qasm(lowered)
        assert "OPENQASM 2.0;" in text

    def test_lowered_adder_still_adds(self):
        from repro.algorithms.arithmetic import build_cadd_test_harness
        from repro.compiler import lower_to_basis
        from repro.core import check_program

        program = lower_to_basis(build_cadd_test_harness())
        report = check_program(program, ensemble_size=8, rng=3)
        assert report.passed


class TestValidationAndResources:
    def test_clean_program_has_no_issues(self):
        program = Program()
        q = program.qreg("q", 2)
        program.prep_z(q[0], 0)
        program.h(q[0])
        program.cnot(q[0], q[1])
        program.measure(q)
        assert validate_program(program) == []

    def test_reprep_after_use_is_flagged(self):
        program = Program()
        q = program.qreg("q", 1)
        program.h(q[0])
        program.prep_z(q[0], 0)
        issues = validate_program(program)
        assert any(issue.severity == "warning" for issue in issues)

    def test_mid_circuit_measurement_is_flagged(self):
        program = Program()
        q = program.qreg("q", 1)
        program.measure(q)
        program.h(q[0])
        issues = validate_program(program)
        assert any("mid-circuit" in issue.message for issue in issues)
        assert all(str(issue) for issue in issues)

    def test_resource_report_counts(self):
        program = Program("adder")
        q = program.qreg("q", 3)
        program.prep_z(q[0], 1)
        program.h(q[0]).cnot(q[0], q[1]).toffoli(q[0], q[1], q[2])
        program.assert_classical(q, 1)
        report = resource_report(program)
        assert report.num_qubits == 3
        assert report.num_gates == 3
        assert report.num_assertions == 1
        assert report.num_preparations == 1
        assert report.gate_histogram["ccx"] == 1
        assert report.as_row()["gates"] == 3
