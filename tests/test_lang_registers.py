"""Tests for quantum registers, qubits and operand flattening."""

import pytest

from repro.lang import QuantumRegister, ClassicalRegister, Qubit, flatten_qubits


class TestQuantumRegister:
    def test_basic_properties(self):
        register = QuantumRegister("q", 4)
        assert len(register) == 4
        assert register[0].index == 0
        assert register[-1].index == 3
        assert repr(register[2]) == "q[2]"

    def test_slicing(self):
        register = QuantumRegister("q", 4)
        assert [q.index for q in register[1:3]] == [1, 2]

    def test_iteration(self):
        register = QuantumRegister("q", 3)
        assert [q.index for q in register] == [0, 1, 2]
        assert register.qubits() == list(register)

    def test_out_of_range(self):
        register = QuantumRegister("q", 2)
        with pytest.raises(IndexError):
            _ = register[2]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            QuantumRegister("q", 0)

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            QuantumRegister("2bad", 2)
        with pytest.raises(ValueError):
            QuantumRegister("", 2)

    def test_identity_semantics(self):
        a = QuantumRegister("q", 2)
        b = QuantumRegister("q", 2)
        assert a != b
        assert a == a
        assert a[0] != b[0]

    def test_classical_register(self):
        creg = ClassicalRegister("c", 3)
        assert len(creg) == 3
        with pytest.raises(ValueError):
            ClassicalRegister("c", 0)


class TestFlattenQubits:
    def test_register_flattens_to_all_qubits(self):
        register = QuantumRegister("q", 3)
        assert flatten_qubits(register) == list(register)

    def test_single_qubit(self):
        register = QuantumRegister("q", 3)
        assert flatten_qubits(register[1]) == [register[1]]

    def test_nested_sequences(self):
        a = QuantumRegister("a", 2)
        b = QuantumRegister("b", 1)
        flat = flatten_qubits([a[0], [a[1], b]])
        assert flat == [a[0], a[1], b[0]]

    def test_duplicates_rejected(self):
        register = QuantumRegister("q", 2)
        with pytest.raises(ValueError):
            flatten_qubits([register[0], register[0]])

    def test_empty_rejected_unless_allowed(self):
        with pytest.raises(ValueError):
            flatten_qubits([])
        assert flatten_qubits([], allow_empty=True) == []

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            flatten_qubits("q[0]")

    def test_qubit_validation(self):
        register = QuantumRegister("q", 2)
        with pytest.raises(IndexError):
            Qubit(register, 5)
