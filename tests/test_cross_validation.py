"""Cross-validation across tool-chain layers.

The paper cross-validated its programs against other quantum frameworks; the
equivalent here is checking that independently implemented layers of this
repository agree with each other on the real benchmark subroutines:

* OpenQASM export -> import round trips preserve program semantics;
* the lowering passes preserve the behaviour of the arithmetic subroutines and
  the assertions still pass after lowering;
* the text drawer renders every benchmark program without losing instructions;
* breakpoint programs emitted by the splitter can be serialised like the
  paper's per-breakpoint OpenQASM outputs.
"""

import numpy as np
import pytest

from repro.algorithms.arithmetic import build_cadd_test_harness
from repro.algorithms.bell import build_bell_program
from repro.algorithms.grover import build_grover_program
from repro.algorithms.oracles import build_bernstein_vazirani_program
from repro.algorithms.qft import build_qft_program, build_qft_test_harness
from repro.compiler import lower_to_basis, split_at_assertions
from repro.core import check_program
from repro.lang import draw, from_qasm, to_qasm
from repro.lang.instructions import GateInstruction


class TestQasmRoundTrips:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_qft_round_trip(self, width):
        program = build_qft_program(width, swaps=True)
        restored = from_qasm(to_qasm(program))
        assert np.allclose(restored.unitary(), program.unitary(), atol=1e-9)

    def test_adder_round_trip_after_lowering(self):
        program = lower_to_basis(build_cadd_test_harness().without_assertions())
        # Strip preparations/measurements: compare only the unitary content.
        gates_only = [i for i in program.instructions if isinstance(i, GateInstruction)]
        unitary_program = type(program)("gates_only")
        for register in program.registers:
            unitary_program.add_register(register)
        for instruction in gates_only:
            unitary_program.append(instruction)
        restored = from_qasm(to_qasm(unitary_program))
        assert np.allclose(restored.unitary(), unitary_program.unitary(), atol=1e-8)

    def test_breakpoint_programs_serialise(self):
        program = build_qft_test_harness()
        for breakpoint_program in split_at_assertions(program):
            text = to_qasm(breakpoint_program.program)
            assert text.startswith("OPENQASM 2.0;")
            assert "qreg reg[4];" in text

    def test_bell_program_with_assertions_serialises_with_comments(self):
        text = to_qasm(build_bell_program())
        assert "// assert_entangled" in text
        assert "measure" in text


class TestLoweringPreservesBehaviour:
    def test_lowered_adder_assertions_still_pass(self):
        lowered = lower_to_basis(build_cadd_test_harness())
        report = check_program(lowered, ensemble_size=8, rng=1)
        assert report.passed

    def test_lowered_bv_still_recovers_hidden_string(self):
        program, query = build_bernstein_vazirani_program(0b101, 3, with_assertions=False)
        lowered = lower_to_basis(program)
        state = lowered.simulate()
        indices = [lowered.qubit_index(q) for q in query]
        assert state.probability_of_outcome(indices, 0b101) == pytest.approx(1.0)

    def test_lowered_grover_distribution_unchanged(self):
        circuit = build_grover_program(degree=3, target=5, style="projectq", with_assertions=False)
        original = circuit.program.without_assertions()
        lowered = lower_to_basis(original)
        indices_original = [original.qubit_index(q) for q in circuit.search_register]
        indices_lowered = [lowered.qubit_index(q) for q in circuit.search_register]
        dist_original = original.simulate().probabilities(indices_original)
        dist_lowered = lowered.simulate().probabilities(indices_lowered)
        assert np.allclose(dist_original, dist_lowered, atol=1e-9)

    def test_lowering_increases_only_gate_count_not_behaviour(self):
        program = build_cadd_test_harness().without_assertions()
        lowered = lower_to_basis(program)
        assert lowered.num_gates() >= program.num_gates()


class TestDrawerOnBenchmarks:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: build_bell_program(),
            lambda: build_qft_test_harness(width=3, value=5),
            lambda: build_cadd_test_harness(),
        ],
        ids=["bell", "qft_harness", "adder_harness"],
    )
    def test_every_row_rendered_and_aligned(self, builder):
        program = builder()
        text = draw(program)
        lines = text.splitlines()
        assert len(lines) == program.num_qubits
        assert len({len(line) for line in lines}) == 1

    def test_drawing_grover_does_not_crash_and_wraps(self):
        circuit = build_grover_program(degree=3, target=5, style="scaffold")
        text = draw(circuit.program, max_width=120)
        assert all(len(line) <= 120 for line in text.splitlines())
