#!/usr/bin/env python3
"""Grover search for square roots in GF(2^m), in both Table 4 coding styles.

Demonstrates the Section 5.1 case study: the amplitude-amplification
subroutine written Scaffold-style (explicit ancilla Toffoli chains) and
ProjectQ-style (compute/uncompute and control blocks), the assertions the
structure suggests, and the automatic placement of product-state assertions
from the high-level pattern markers (Section 5.1.1).

Run with:  python examples/grover_search.py
"""

from repro.algorithms.gf2 import GF2Field
from repro.algorithms.grover import build_grover_program, run_grover
import repro
from repro.lang import auto_place_assertions


def main() -> None:
    degree, target = 3, 5
    field = GF2Field(degree)
    answer = field.sqrt(target)
    print(f"Searching GF(2^{degree}) for the square root of {target}.")
    print(f"Classical reference answer: sqrt({target}) = {answer} "
          f"(check: {answer}^2 = {field.square(answer)})")
    print()

    for style in ("scaffold", "projectq"):
        print(f"--- {style} coding style (Table 4, "
              f"{'left' if style == 'scaffold' else 'right'} column) ---")
        result = run_grover(degree=degree, target=target, style=style, shots=64, rng=1)
        print(f"iterations: {result['iterations']}, "
              f"success probability: {result['success_probability']:.3f}")
        print(f"sampled counts: {result['counts']}")
        print(f"most common outcome: {result['most_common']} "
              f"({'correct' if result['found'] else 'WRONG'})")
        print()

    print("--- assertions placed by hand (superposition / scratch-cleanup) ---")
    circuit = build_grover_program(degree, target, style="projectq")
    report = repro.session(repro.RunConfig(ensemble_size=32, seed=2)).check(circuit.program)
    print(report.summary())
    print()

    print("--- assertions placed automatically from the compute/uncompute markers ---")
    bare = build_grover_program(degree, target, style="projectq", with_assertions=False)
    suggestions = auto_place_assertions(bare.program, kinds=("product",))
    for suggestion in suggestions:
        print(f"  suggested {suggestion.kind} assertion at instruction {suggestion.position} "
              f"(reason: {suggestion.reason})")
    report = repro.session(repro.RunConfig(ensemble_size=32, seed=3)).check(bare.program)
    print(report.summary())


if __name__ == "__main__":
    main()
