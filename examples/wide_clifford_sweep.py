#!/usr/bin/env python3
"""Checking 128-qubit Clifford programs on the bit-packed tableau.

A dense statevector at 128 qubits would need ``2**128 x 16`` bytes — twenty
orders of magnitude beyond any machine — yet the stabilizer checker walks
the same breakpoint pipeline at that width in milliseconds: the bit-packed
tableau costs O(n^2 / 64) words, and the Clifford workloads keep asserted
groups narrow (chain ends, syndrome windows), so the sparse branching
readout never materialises a wide histogram.

The script shows the three width-frontier pieces working together:

1. the memory-aware router refusing a hopeless dense request and routing
   ``backend="auto"`` to the tableau (``ExecutionPlan.routing_note``);
2. the full detection/false-positive sweep at 128 qubits;
3. an importance-sampled rare-noise run (p = 1e-4) whose weighted ensemble
   carries a finite-variance error estimate at just 256 members.

Run with:  python examples/wide_clifford_sweep.py
"""

import time

import repro
from repro import RunConfig
from repro.compiler import BreakpointExecutor, build_execution_plan
from repro.sim import NoiseModel, depolarizing
from repro.workloads import build_ghz_chain_program, build_repetition_code_program
from repro.workloads.clifford import clifford_detection_sweep

WIDE_QUBITS = 128
SEED = 20190622


def main() -> None:
    # -- 1. the router: dense refusal, Clifford rerouting ---------------
    program = build_ghz_chain_program(WIDE_QUBITS)
    plan = build_execution_plan(program)

    try:
        BreakpointExecutor(
            ensemble_size=8, rng=SEED, backend="statevector"
        ).run_plan(plan)
    except ValueError as error:
        print("dense request refused before allocation:")
        print(f"  {error}\n")

    executor = BreakpointExecutor(ensemble_size=32, rng=SEED, backend="auto")
    start = time.perf_counter()
    executor.run_plan(plan)
    seconds = time.perf_counter() - start
    print(f"auto-routed {WIDE_QUBITS}-qubit walk in {seconds * 1e3:.1f} ms")
    print(f"  {plan.routing_note}\n")

    # -- 2. the checker sweep at the width frontier ---------------------
    start = time.perf_counter()
    rows = clifford_detection_sweep(
        widths=(WIDE_QUBITS,),
        trials=5,
        config=RunConfig(seed=SEED, backend="stabilizer", ensemble_size=32),
    )
    seconds = time.perf_counter() - start
    print(f"detection sweep at {WIDE_QUBITS} qubits ({seconds:.2f} s):")
    for row in rows:
        print(
            f"  {row['scenario']:<28} n={row['num_qubits']:<4} "
            f"detection={row['detection_rate']:.2f} "
            f"false_positive={row['false_positive_rate']:.2f}"
        )
    print()

    # -- 3. importance-sampled rare noise -------------------------------
    # At p = 1e-4 a 256-member plain ensemble usually sees zero error
    # events; boosting every channel draw to q = 0.05 and reweighting by
    # the likelihood ratio keeps the estimator unbiased while every member
    # carries signal.  The Kish effective sample size reports the cost.
    noisy = build_repetition_code_program(num_data=12)
    noise = NoiseModel.from_channels([depolarizing(1e-4)], importance_boost=0.02)
    noisy_executor = BreakpointExecutor(
        ensemble_size=256, rng=SEED, backend="stabilizer", noise=noise
    )
    # Breakpoint 0 asserts the first syndrome window reads 0, so the
    # weighted mass on nonzero outcomes is the syndrome-firing probability.
    ensemble = noisy_executor.run_plan(build_execution_plan(noisy))[0].joint
    weighted = ensemble.weighted_frequencies()
    error_rate = 1.0 - weighted[0] / weighted.sum() if weighted.sum() else 0.0
    print("importance-sampled p=1e-4 run (256 members):")
    print(f"  weighted error estimate : {error_rate:.2e}")
    print(f"  effective sample size   : {ensemble.effective_sample_size():.1f}")

    # A session sees the same knobs through RunConfig.
    report = repro.session(
        RunConfig(seed=SEED, backend="stabilizer", ensemble_size=32)
    ).check(build_ghz_chain_program(WIDE_QUBITS))
    print(f"\nsession check at {WIDE_QUBITS} qubits: passed={report.passed}")


if __name__ == "__main__":
    main()
