#!/usr/bin/env python3
"""Sweep every bug-injection scenario and show which assertion catches it.

This regenerates, end to end, the bug taxonomy of Sections 4.1-4.6: for each
of the paper's six bug types we build a correct program and a buggy variant,
check both, and report which statistical assertion fires on the bug.

Run with:  python examples/bug_hunting.py
"""

import repro
from repro.bugs import BUG_CATALOG, BUG_SCENARIOS


def main() -> None:
    print("Bug taxonomy (Sections 4.1-4.6):")
    for bug_type, description in BUG_CATALOG.items():
        print(f"  [{bug_type.value}] {description.pattern:<28} "
              f"defended by: {', '.join(description.assertion_types)}")
    print()

    header = (
        f"{'scenario':<32} {'bug type':>8} {'correct':>8} {'buggy':>8} {'caught by':>12}"
    )
    print(header)
    print("-" * len(header))
    for name, scenario in sorted(BUG_SCENARIOS.items()):
        session = repro.session(
            repro.RunConfig(ensemble_size=scenario.ensemble_size, seed=7)
        )
        correct_report = session.check(scenario.build_correct())
        buggy_report = session.replace().check(scenario.build_buggy())
        caught_by = sorted(
            {record.outcome.assertion_type for record in buggy_report.failures()}
        )
        print(
            f"{name:<32} {scenario.bug_type.value:>8} "
            f"{'pass' if correct_report.passed else 'FAIL':>8} "
            f"{'caught' if not buggy_report.passed else 'MISSED':>8} "
            f"{', '.join(caught_by):>12}"
        )
    print()
    print("Every buggy variant should be 'caught' and every correct variant should 'pass'.")


if __name__ == "__main__":
    main()
