#!/usr/bin/env python3
"""Quickstart: write a quantum program with statistical assertions and check it.

This walks through the paper's introductory example (Figure 1): a Bell-state
preparation circuit whose two qubits must end up entangled.  We write the
program with the `repro` IR, attach assertions, and let the checker compile
the program into breakpoints, simulate measurement ensembles and run the
chi-square tests.

Run with:  python examples/quickstart.py
"""

import repro
from repro import Program, RunConfig


def build_bell_program() -> Program:
    """The Figure 1 circuit with assertions at the interesting points."""
    program = Program("quickstart_bell")
    qubits = program.qreg("q", 2)

    # (A) classical initial state |00>
    program.prep_z(qubits[0], 0)
    program.prep_z(qubits[1], 0)
    program.assert_classical(qubits, 0, label="precondition: both qubits start at 0")

    # (B) Hadamard creates a superposition on qubit 0
    program.h(qubits[0])
    program.assert_superposition([qubits[0]], label="qubit 0 in superposition")

    # (C) CNOT entangles the two qubits -> (D) Bell state
    program.cnot(qubits[0], qubits[1])
    program.assert_entangled([qubits[0]], [qubits[1]], label="Bell pair entangled")

    # (E) measurement
    program.measure(qubits, label="m")
    return program


def main() -> None:
    program = build_bell_program()
    print("Program listing:")
    print(program.describe())
    print()

    # One RunConfig pins the whole run: ensemble size, seed, backend.  It
    # round-trips through JSON, so this exact run is reproducible anywhere.
    session = repro.session(RunConfig(ensemble_size=16, seed=2019))
    report = session.check(program)
    print(report.summary())
    print()

    # Now inject a bug: forget the CNOT.  The entanglement assertion fails.
    buggy = Program("quickstart_bell_buggy")
    qubits = buggy.qreg("q", 2)
    buggy.h(qubits[0])
    buggy.assert_entangled([qubits[0]], [qubits[1]], label="Bell pair entangled")
    buggy_report = session.replace().check(buggy)
    print("After deleting the CNOT (bug!):")
    print(buggy_report.summary())


if __name__ == "__main__":
    main()
