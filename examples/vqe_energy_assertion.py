#!/usr/bin/env python3
"""Observable breakpoints on chemistry circuits: assert a VQE energy in-circuit.

The observables subsystem makes a molecular energy a first-class assertion:
``assert_observable(q, H, expectation, tolerance)`` claims
``|<H> - expectation| <= tolerance`` on the breakpoint state.  This demo
walks the three evaluation paths on the H2 molecule:

1. **Grouped sampling** — the UCCD ansatz at the optimal angle asserts the
   FCI ground-state energy; the 15-term Hamiltonian is measured through 5
   qubit-wise-commuting settings instead of 15 (a 3x preparation saving at
   identical verdicts, compare ``group_observables=False``).
2. **Exact stabilizer evaluation** — the Hartree-Fock preparation is
   Clifford, so on the ``auto`` backend the energy is read exactly off the
   tableau: zero sampling shots, zero standard error.
3. **Static proof** — with ``static_preflight=True`` the abstract
   interpreter proves (or refutes) the Clifford assertion before any
   simulation runs at all.

A sign-flipped ansatz angle — the classic transcription bug when porting an
excitation generator — is caught by the same assertion.

Run with:  python examples/vqe_energy_assertion.py
"""

import repro
from repro.observables.grouping import group_terms
from repro.workloads.chemistry_observables import (
    build_hf_energy_program,
    build_vqe_energy_program,
    ground_energy,
    h2_hamiltonian,
    hf_energy,
)

SEED = 20190622


def describe_record(record) -> str:
    details = record.outcome.details
    verdict = "PASS" if record.outcome.passed else "FAIL"
    path = "exact" if details["exact"] else "sampled"
    return (
        f"  [{verdict}] <H> = {details['mean']:+.5f} Ha ({path}, "
        f"{details['num_settings']} settings, "
        f"{int(details['total_shots'])} shots, method={record.method})"
    )


def main() -> None:
    hamiltonian = h2_hamiltonian()
    grouped = group_terms(hamiltonian)
    print(f"H2 Hamiltonian: {len(hamiltonian)} Pauli terms")
    print(f"Grouped measurement settings ({len(grouped)}):")
    for setting in grouped:
        print(f"  {setting.describe()}  covers terms {setting.term_indices}")
    print()

    print(f"1. VQE ansatz asserting the ground energy ({ground_energy():.5f} Ha):")
    session = repro.session(repro.RunConfig(backend="statevector", seed=SEED))
    report = session.check(build_vqe_energy_program())
    print(describe_record(report.records[0]))

    per_term = repro.RunConfig(
        backend="statevector", seed=SEED, group_observables=False
    )
    report = repro.check_program(build_vqe_energy_program(), per_term)
    print("   ... per-term baseline (group_observables=False):")
    print(describe_record(report.records[0]))
    print()

    print(f"2. Clifford HF preparation ({hf_energy():.5f} Ha) on backend='auto':")
    exact_cfg = repro.RunConfig(backend="auto", seed=SEED)
    report = repro.check_program(build_hf_energy_program(), exact_cfg)
    print(describe_record(report.records[0]))
    print()

    print("3. Static preflight proves the Clifford assertion without sampling:")
    static_cfg = repro.RunConfig(backend="auto", seed=SEED, static_preflight=True)
    report = repro.check_program(build_hf_energy_program(), static_cfg)
    record = report.records[0]
    print(f"  method={record.method}, verdict details: {record.outcome.message}")
    print()

    print("The bug: ansatz angle sign-flipped (rotates away from the ground state):")
    report = session.check(build_vqe_energy_program(buggy=True))
    print(describe_record(report.records[0]))


if __name__ == "__main__":
    main()
