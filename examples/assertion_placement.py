#!/usr/bin/env python3
"""Tooling tour: circuit drawing, automatic assertion placement, OpenQASM export.

Shows the developer-facing side of the framework on a small compute/uncompute
program: render it as a text circuit diagram, let the pattern scanner suggest
and place assertions (Section 5.1.1), check them, lower the program to the
{1-qubit, CNOT} basis and export the breakpoint programs to OpenQASM 2.0 — the
same artefacts the paper's ScaffCC-based flow produces.

Run with:  python examples/assertion_placement.py
"""

import repro
from repro.compiler import lower_to_basis, resource_report, split_at_assertions
from repro.lang import Program, auto_place_assertions, compute, control, draw, to_qasm, uncompute


def build_demo_program() -> Program:
    """A toy 'controlled increment with a borrowed scratch qubit' program."""
    program = Program("controlled_increment")
    ctrl = program.qreg("ctrl", 1)
    data = program.qreg("data", 2)
    scratch = program.qreg("scratch", 1)

    program.prep_z(ctrl[0], 0)
    program.h(ctrl[0])
    program.prepare_int(data, 1)

    # Compute a helper value into the scratch qubit ...
    with compute(program, involved=[scratch[0]]):
        program.cnot(data[0], scratch[0])

    # ... use it inside a controlled block (the recursion pattern) ...
    with control(program, ctrl):
        program.cnot(scratch[0], data[1])

    # ... and mirror the computation to free the scratch qubit again.
    uncompute(program)
    program.measure(data, label="result")
    return program


def main() -> None:
    program = build_demo_program()

    print("Circuit diagram:")
    print(draw(program))
    print()

    suggestions = auto_place_assertions(program)
    print("Assertions suggested by the pattern scanner:")
    for suggestion in suggestions:
        group_a = ", ".join(repr(q) for q in suggestion.group_a)
        group_b = ", ".join(repr(q) for q in suggestion.group_b)
        print(f"  {suggestion.kind:<10} at instruction {suggestion.position:<3} "
              f"({suggestion.reason}): [{group_a}] vs [{group_b}]")
    print()

    print("Circuit diagram with the auto-placed assertions:")
    print(draw(program))
    print()

    report = repro.session(repro.RunConfig(ensemble_size=32, seed=1)).check(program)
    print(report.summary())
    print()

    print("Breakpoint programs emitted by the splitter (as in the ScaffCC flow):")
    for breakpoint_program in split_at_assertions(program):
        print(f"  - {breakpoint_program.describe()}")
    print()

    lowered = lower_to_basis(program.without_assertions())
    stats = resource_report(lowered)
    print(f"After lowering to the basic gate set: {stats.num_gates} gates, depth {stats.depth}")
    print()
    print("OpenQASM 2.0 of the lowered program (first 15 lines):")
    for line in to_qasm(lowered).splitlines()[:15]:
        print("  " + line)


if __name__ == "__main__":
    main()
