#!/usr/bin/env python3
"""Quantum chemistry case study: the H2 molecule (Section 5.2, Table 5).

Builds the four-qubit Jordan-Wigner Hamiltonian of H2 from the Whitfield
STO-3G integrals, diagonalises it exactly (the cross-validation oracle), and
then estimates the energies of the six Table 5 electron assignments with
phase estimation of the Trotterised evolution operator, including the two
algorithm-progress checks of Section 5.2.3.

Run with:  python examples/h2_ground_state.py
"""

import numpy as np

from repro.chemistry import (
    ELECTRON_ASSIGNMENTS,
    H2EnergyEstimator,
    build_h2_qubit_hamiltonian,
    dominant_eigenstate_energy,
    precision_convergence,
    table5_rows,
    trotter_convergence,
    two_electron_eigenvalues,
)


def main() -> None:
    hamiltonian = build_h2_qubit_hamiltonian()
    print("H2 / STO-3G four-qubit Hamiltonian (Jordan-Wigner, nuclear repulsion included):")
    print(hamiltonian.describe())
    print()

    eigenvalues = two_electron_eigenvalues(hamiltonian)
    print("Exact two-electron spectrum (Hartree):", np.round(eigenvalues, 4))
    print(f"FCI ground-state energy: {eigenvalues[0]:.5f} Ha")
    print()

    print("Table 5 — energies per electron assignment (QPE read-out):")
    estimator = H2EnergyEstimator(num_bits=6, trotter_steps_per_unit=2)
    rows = table5_rows(estimator)
    header = f"{'level':>5} {'assignment':>10} {'QPE energy':>12} {'exact':>10} {'overlap':>8}"
    print(header)
    for row in rows:
        print(
            f"{row['level']:>5} {row['occupation']:>10} {row['qpe_energy']:12.4f} "
            f"{row['exact_dominant_energy']:10.4f} {row['overlap']:8.3f}"
        )
    print()

    print("Iterative phase estimation of the ground state (7 phase bits):")
    ipe = H2EnergyEstimator(num_bits=7, trotter_steps_per_unit=2).estimate_ipe(
        ELECTRON_ASSIGNMENTS["G"]
    )
    exact, overlap = dominant_eigenstate_energy(hamiltonian, ELECTRON_ASSIGNMENTS["G"])
    print(f"  measured bits (MSB first): {ipe.details['bits']}")
    print(f"  estimated energy: {ipe.energy:.4f} Ha  (exact {exact:.4f} Ha, "
          f"initial-state overlap {overlap:.3f})")
    print()

    print("Section 5.2.3 check 1 — convergence with Trotter refinement:")
    for row in trotter_convergence(steps_list=(1, 2, 4), num_bits=6):
        print(f"  steps/unit={row['trotter_steps_per_unit']}: "
              f"peak energy {row['peak_energy']:.4f} Ha")
    print()

    print("Section 5.2.3 check 2 — consistency across read-out precision:")
    for row in precision_convergence(bits_list=(3, 4, 5, 6)):
        bits = "".join(str(b) for b in row["bits"])
        print(f"  {row['num_bits']} bits: phase 0.{bits} -> {row['energy']:.4f} Ha")


if __name__ == "__main__":
    main()
