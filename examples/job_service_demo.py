#!/usr/bin/env python3
"""Debugging-as-a-service tour: async jobs, crash recovery, degradation.

Drives the `repro.service` job layer end to end: submit a mixed batch of
checking jobs (worker-pool, cache-served, statically decided), kill a worker
mid-run via the deterministic fault-injection harness, and watch every job
reach a terminal state anyway — the crashed job's retried report is
byte-identical to an uninjected run, the hung job comes back as a structured
TIMEOUT, and the cached/static jobs answer even with the worker pool down.

Run with:  python examples/job_service_demo.py
"""

from repro import RunConfig
from repro.algorithms.bell import build_bell_program, build_ghz_program
from repro.core.report import format_table
from repro.service import JobState, LocalService, serve_http

SEED = 20190622


def job_rows(jobs):
    return [
        {
            "job": job.id,
            "program": job.program.name,
            "state": job.state,
            "attempts": job.attempts,
            "failures": "; ".join(
                f"{entry['kind']}@attempt{entry['attempt']}"
                for entry in job.failure_chain
            )
            or "-",
            "passed": job.report.passed if job.report is not None else "-",
        }
        for job in jobs
    ]


def main() -> int:
    config = RunConfig(ensemble_size=16, backoff_base=0.05, job_timeout=2.0)

    # -- 1. a mixed batch under injected chaos ---------------------------
    # Fault schedule (by submission index): job 0's first worker is
    # SIGKILLed mid-run, job 1's worker hangs until the timeout kill.
    print("=== mixed batch with a worker killed mid-run ===")
    with LocalService(
        max_workers=2, root_seed=SEED, fault_spec="crash@0; hang@1"
    ) as svc:
        ids = [
            svc.submit(build_bell_program(), config),  # crashed, then retried
            svc.submit(build_bell_program(), config),  # hangs -> TIMEOUT
            svc.submit(build_ghz_program(3), config),  # plain worker run
            # Statically decidable: answered at submission, no worker.
            svc.submit(
                build_ghz_program(4), config.replace(static_preflight=True)
            ),
            # Same program+config as job 0 after it finishes -> CACHED
            # (submitted below, once the first report exists).
        ]
        jobs = svc.wait_all(ids)

        # Repeat job 0's exact submission: the content-addressed cache
        # answers inline, byte-identical to the worker-computed report.
        repeat_id = svc.submit(build_bell_program(), jobs[0].config)
        repeat = svc.wait(repeat_id)
        jobs.append(repeat)
        print(format_table(job_rows(jobs)))
        assert all(job.terminal for job in jobs), "a job was lost!"
        assert jobs[0].state == JobState.DONE and jobs[0].attempts == 2
        assert jobs[1].state == JobState.TIMEOUT
        assert repeat.state == JobState.CACHED
        assert repeat.report.to_json() == jobs[0].report.to_json()
        print(
            f"\njob 0 survived a SIGKILL ({jobs[0].attempts} attempts); "
            "its retried report is byte-identical to the repeat's cache hit."
        )

    # -- 2. the same crash, uninjected baseline --------------------------
    print("\n=== byte-identity against an uninjected service ===")
    with LocalService(max_workers=2, root_seed=SEED) as clean:
        baseline = clean.wait(clean.submit(build_bell_program(), config))
    assert baseline.report.to_json() == jobs[0].report.to_json()
    print(
        "same root seed, same submission index, no faults: "
        "the report matches the crash-recovered one byte for byte."
    )

    # -- 3. degradation: the pool is entirely down -----------------------
    print("\n=== pool down (max_workers=0): the ladder still answers ===")
    with LocalService(max_workers=0, root_seed=SEED) as down:
        static = down.job(
            down.submit(
                build_ghz_program(3), config.replace(static_preflight=True)
            )
        )
        queued_id = down.submit(build_bell_program(), config)
        print(
            f"static job: {static.state} "
            f"({static.report.num_static} assertions decided without a sample)"
        )
        print(f"noisy job:  {down.job(queued_id).state} (no worker to run it)")
        assert static.state == JobState.STATIC
        assert down.job(queued_id).state == JobState.QUEUED

    # -- 4. the HTTP front ----------------------------------------------
    print("\n=== the same service over HTTP ===")
    import json
    import urllib.request

    from repro.lang import to_qasm

    with LocalService(max_workers=2, root_seed=SEED) as svc, serve_http(
        svc
    ) as server:
        payload = json.dumps(
            {"program": to_qasm(build_bell_program()), "config": config.to_dict()}
        ).encode()
        request = urllib.request.Request(
            server.url + "/jobs", data=payload, method="POST"
        )
        with urllib.request.urlopen(request) as resp:
            job_id = json.load(resp)["job_id"]
        with urllib.request.urlopen(
            server.url + f"/jobs/{job_id}/wait?timeout=60"
        ) as resp:
            body = json.load(resp)
        print(
            f"POST /jobs -> {job_id}; GET /jobs/{job_id}/wait -> "
            f"state={body['state']} passed={body['report']['passed']}"
        )
        assert body["state"] == JobState.DONE

    print("\nevery job reached a terminal state; no work was lost.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
