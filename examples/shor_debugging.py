#!/usr/bin/env python3
"""Debugging Shor's algorithm with statistical assertions (Section 4 walkthrough).

The script follows the paper's bottom-up methodology:

1. unit-test the QFT subroutine (Listing 1);
2. unit-test the controlled adder, catching the Table 1 rotation bug (Listing 3);
3. unit-test the controlled modular multiplier with entanglement and
   product-state assertions, catching the control-routing and wrong-inverse
   bugs (Listing 4, Sections 4.4-4.5);
4. run the full integration test for N = 15 and reproduce Table 2 and Table 3
   (Sections 4.6).

Run with:  python examples/shor_debugging.py
"""

import numpy as np

from repro.algorithms.arithmetic import build_cadd_test_harness
from repro.algorithms.modular import build_cmodmul_test_harness
from repro.algorithms.qft import build_qft_test_harness
from repro.algorithms.shor import (
    build_shor_program,
    run_shor,
    shor_joint_distribution,
    table2_rows,
)
import repro
from repro.core import check_program


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def step1_qft_unit_test() -> None:
    banner("Step 1 — Listing 1: QFT unit test (classical -> superposition -> classical)")
    report = check_program(build_qft_test_harness(width=4, value=5),
                           repro.RunConfig(ensemble_size=64, seed=1))
    print(report.summary())


def step2_adder_unit_test() -> None:
    banner("Step 2 — Listing 3: controlled adder unit test (12 + 13 = 25)")
    print("Correct implementation:")
    print(check_program(build_cadd_test_harness(),
                        repro.RunConfig(ensemble_size=16, seed=2)).summary())

    print()
    print("With the Table 1 bug (rotation angles flipped) the adder subtracts:")
    report = check_program(build_cadd_test_harness(angle_sign=-1.0),
                           repro.RunConfig(ensemble_size=16, seed=2))
    print(report.summary())


def step3_multiplier_unit_test() -> None:
    banner("Step 3 — Listing 4: controlled modular multiplier unit test")
    print("Correct control routing and modular inverse (7, 13):")
    print(check_program(build_cmodmul_test_harness(),
                        repro.RunConfig(ensemble_size=16, seed=3)).summary())

    print()
    print("Bug type 4 — wrong control qubit routed into the multiplier:")
    report = check_program(
        build_cmodmul_test_harness(control_bug_duplicate=True),
        repro.RunConfig(ensemble_size=16, seed=3),
    )
    print(report.summary())

    print()
    print("Bug type 6 — wrong modular inverse (12 instead of 13):")
    report = check_program(
        build_cmodmul_test_harness(inverse_multiplier=12),
        repro.RunConfig(ensemble_size=16, seed=3),
    )
    print(report.summary())


def step4_integration_test() -> None:
    banner("Step 4 — Figure 2 / Tables 2-3: full Shor integration test for N = 15")
    print("Table 2 (classical inputs):")
    for row in table2_rows():
        print(f"  k={row['k']}: a={row['a']:2d}  a^-1={row['a_inv']:2d}")

    print()
    print("Correct program — assertion report:")
    circuit = build_shor_program()
    print(repro.session(repro.RunConfig(ensemble_size=32, seed=4)).check(circuit.program).summary())

    print()
    result = run_shor(rng=5, shots=128)
    print(f"Sampled outputs: {result['counts']}  (expected {result['expected_outputs']})")
    print(f"Recovered order: {result['order']}, factors: {result['factors']}")

    print()
    print("Buggy program (a^-1 = 12 on the first iteration) — Table 3:")
    buggy = build_shor_program(inverse_overrides={0: 12})
    table = shor_joint_distribution(buggy)
    np.set_printoptions(precision=4, suppress=True)
    for ancilla_value in range(table.shape[0]):
        if table[ancilla_value].sum() > 1e-9:
            print(f"  ancilla={ancilla_value:2d}: {table[ancilla_value]}")
    print("Assertion report for the buggy program:")
    print(repro.session(repro.RunConfig(ensemble_size=32, seed=6)).check(buggy.program).summary())


def main() -> None:
    step1_qft_unit_test()
    step2_adder_unit_test()
    step3_multiplier_unit_test()
    step4_integration_test()


if __name__ == "__main__":
    main()
