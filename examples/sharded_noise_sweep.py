#!/usr/bin/env python3
"""Sharded 100-point noise sweep through the session facade.

A noise-robustness experiment is 100 independent checking runs — one per
gate-error rate — and the session facade makes the whole thing one pinned
artefact: the ``RunConfig`` carries the sweep policy (``shard=True``,
``max_workers``) next to the physics knobs, per-point seeds are spawned from
the config's seed through one ``SeedSequence``, and the reports come back in
point order.  Running with 1 worker or 8 produces byte-identical reports;
worker count is pure mechanism.

Inside each worker the plan cache does the other half of the work: every
point of a sweep shares one compiled execution plan, so the program is split
and Clifford-classified once per process, not once per point.

Run with:  python examples/sharded_noise_sweep.py
"""

import time

import repro
from repro import RunConfig
from repro.sim import NoiseModel, depolarizing
from repro.workloads import (
    available_workers,
    build_shor_noise_workload,
    sharded_sweep,
)

NUM_POINTS = 100
MIN_RATE = 1e-7
MAX_RATE = 2e-3


def main() -> None:
    # One config pins the whole experiment, sharding policy included.
    session = repro.session(
        RunConfig(
            ensemble_size=8,
            seed=20190622,
            backend="trajectory",
            shard=True,
            max_workers=None,  # one worker per CPU core
        )
    )
    workers = available_workers(session.config.max_workers)

    # 100 log-spaced depolarizing rates spanning undetectably-rare to
    # every-run-corrupting noise; each point becomes a self-contained
    # (program, config) pair with its own seed.
    ratio = MAX_RATE / MIN_RATE
    rates = [
        MIN_RATE * ratio ** (i / (NUM_POINTS - 1)) for i in range(NUM_POINTS)
    ]
    overrides = [
        {"noise": NoiseModel.from_channels(depolarizing(rate))} for rate in rates
    ]

    print(
        f"checking {NUM_POINTS} noise points of the 13-qubit Shor workload "
        f"on {workers} worker(s) ..."
    )
    start = time.perf_counter()
    reports = sharded_sweep(
        lambda: build_shor_noise_workload(buggy=False),
        session.config,
        overrides,
    )
    elapsed = time.perf_counter() - start

    fired = sum(1 for report in reports if not report.passed)
    print(f"done in {elapsed:.1f}s wall clock ({elapsed / NUM_POINTS:.2f}s/point)")
    print(f"assertions fired at {fired}/{NUM_POINTS} noise points")

    # The program is *correct* — every firing is the assertions detecting
    # noise.  Show the detection transition across the rate decades.
    half = NUM_POINTS // 2
    for label, chunk, lo, hi in (
        ("low-noise half", reports[:half], rates[0], rates[half - 1]),
        ("high-noise half", reports[half:], rates[half], rates[-1]),
    ):
        detected = sum(1 for report in chunk if not report.passed)
        print(
            f"  {label} ({lo:.1e} .. {hi:.1e}): "
            f"noise detected at {detected}/{len(chunk)} points"
        )


if __name__ == "__main__":
    main()
